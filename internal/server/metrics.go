package server

import (
	"expvar"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// histogram is a fixed-bucket latency histogram implementing expvar.Var.
// Buckets are cumulative ("le" = less-than-or-equal, Prometheus style);
// the final bucket is +Inf, so it always equals Count.
type histogram struct {
	bounds []time.Duration // upper bounds, ascending; implicit +Inf last
	counts []atomic.Int64  // len(bounds)+1
	count  atomic.Int64
	sumNS  atomic.Int64
}

var defaultBuckets = []time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

func newHistogram() *histogram {
	return &histogram{
		bounds: defaultBuckets,
		counts: make([]atomic.Int64, len(defaultBuckets)+1),
	}
}

// Observe records one latency sample.
func (h *histogram) Observe(d time.Duration) {
	i := len(h.bounds)
	for j, b := range h.bounds {
		if d <= b {
			i = j
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// String renders the histogram as JSON, cumulative counts per bucket.
func (h *histogram) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(&sb, "%q: %d, ", "le_"+b.String(), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(&sb, "%q: %d, ", "le_inf", cum)
	fmt.Fprintf(&sb, "%q: %d, ", "count", h.count.Load())
	fmt.Fprintf(&sb, "%q: %.3f}", "sum_ms", float64(h.sumNS.Load())/1e6)
	return sb.String()
}

// endpointMetrics aggregates one endpoint's counters and latency.
type endpointMetrics struct {
	requests  *expvar.Int
	errors    *expvar.Int // responses with status >= 400
	cacheHits *expvar.Int
	cacheMiss *expvar.Int
	latency   *histogram
}

// Metrics is the server's observability surface. Every counter lives in
// a private expvar.Map (not expvar.Publish'd — multiple servers in one
// process, as in tests, must not collide on global names) and is served
// on /debug/vars by Handler.
type Metrics struct {
	vars      *expvar.Map
	endpoints map[string]*endpointMetrics
	inflight  *expvar.Int
}

// newMetrics prepares per-endpoint metric families for the given
// endpoint names.
func newMetrics(endpoints []string) *Metrics {
	m := &Metrics{
		vars:      new(expvar.Map).Init(),
		endpoints: make(map[string]*endpointMetrics, len(endpoints)),
		inflight:  new(expvar.Int),
	}
	m.vars.Set("inflight", m.inflight)
	for _, name := range endpoints {
		em := &endpointMetrics{
			requests:  new(expvar.Int),
			errors:    new(expvar.Int),
			cacheHits: new(expvar.Int),
			cacheMiss: new(expvar.Int),
			latency:   newHistogram(),
		}
		sub := new(expvar.Map).Init()
		sub.Set("requests", em.requests)
		sub.Set("errors", em.errors)
		sub.Set("cache_hits", em.cacheHits)
		sub.Set("cache_misses", em.cacheMiss)
		sub.Set("latency", em.latency)
		m.vars.Set(name, sub)
		m.endpoints[name] = em
	}
	return m
}

func (m *Metrics) endpoint(name string) *endpointMetrics { return m.endpoints[name] }

// Handler serves the metrics tree as JSON, like the stdlib's
// /debug/vars but scoped to this server instance.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, m.vars.String())
	})
}
