package experiments

import (
	"strings"

	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/prob"
)

// Table1Row is one taxonomy's concept-space size.
type Table1Row struct {
	Name     string
	Concepts int
}

// Table1 reproduces Table 1: the scale of open-domain taxonomies in
// number of concepts. Probase's count is the number of concept nodes in
// the built taxonomy.
func (s *Setup) Table1() ([]Table1Row, string) {
	probaseConcepts := len(s.PB.Graph.Concepts())
	rows := []Table1Row{
		{"Freebase", s.Freebase.NumConcepts()},
		{"WordNet", s.WordNet.NumConcepts()},
		{"WikiTaxonomy", s.WikiTax.NumConcepts()},
		{"YAGO", s.YAGO.NumConcepts()},
		{"Probase", probaseConcepts},
	}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{r.Name, itoa(r.Concepts)}
	}
	return rows, table("Table 1: scale of open-domain taxonomies (scaled reproduction)",
		[]string{"Taxonomy", "Concepts"}, cells)
}

// Table4 reproduces the concept-subconcept relationship space.
func (s *Setup) Table4() ([]eval.HierarchyMetrics, string, error) {
	entries := []struct {
		name string
		g    graph.Reader
	}{
		{"WordNet", s.WordNet.Graph},
		{"WikiTaxonomy", s.WikiTax.Graph},
		{"YAGO", s.YAGO.Graph},
		{"Freebase", s.Freebase.Graph},
		{"Probase", s.PB.Graph},
	}
	var rows []eval.HierarchyMetrics
	var cells [][]string
	for _, e := range entries {
		m, err := eval.Hierarchy(e.name, e.g)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, m)
		cells = append(cells, []string{
			m.Name, itoa(m.IsAPairs), f2(m.AvgChildren), f2(m.AvgParents),
			f3(m.AvgLevel), itoa(m.MaxLevel),
		})
	}
	return rows, table("Table 4: concept-subconcept relationship space",
		[]string{"Taxonomy", "isA pairs", "Avg children", "Avg parents", "Avg level", "Max level"}, cells), nil
}

// Table5Row is one benchmark concept with its size and typical instances.
type Table5Row struct {
	Concept   string
	Instances int
	Typical   []string
}

// Table5 reproduces the benchmark-concept table: instance counts in Γ and
// the top typical instances by T(i|x).
func (s *Setup) Table5() ([]Table5Row, string) {
	var rows []Table5Row
	var cells [][]string
	for _, c := range eval.BenchmarkConcepts {
		size := len(s.PB.Store.SubsOf(c))
		top := s.PB.InstancesOf(c, 3)
		labels := make([]string, len(top))
		for i, r := range top {
			labels[i] = r.Label
		}
		rows = append(rows, Table5Row{Concept: c, Instances: size, Typical: labels})
		cells = append(cells, []string{c, itoa(size), strings.Join(labels, ", ")})
	}
	return rows, table("Table 5: benchmark concepts and typical instances",
		[]string{"Concept", "# extracted", "Typical instances"}, cells)
}

// topInstances is a helper shared with the figures.
func topLabels(rs []prob.Ranked) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Label
	}
	return out
}
