package obs

import (
	"net/http"
	"net/http/pprof"
)

// PprofHandler returns a mux serving the standard net/http/pprof
// endpoints under /debug/pprof/. The handlers are registered on a
// fresh mux (not http.DefaultServeMux), so profiling stays opt-in:
// probase-serve only exposes it when -pprof-addr is set, and typically
// on a loopback-only listener separate from the query port.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
