package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServerArgs is startServer with extra command-line flags appended.
func startServerArgs(t *testing.T, ctx context.Context, extra ...string) (string, chan error, *bytes.Buffer) {
	t.Helper()
	stderr := &bytes.Buffer{}
	ready := make(chan net.Addr, 1)
	exit := make(chan error, 1)
	args := append([]string{"-snapshot", snapshotPath(t), "-addr", "127.0.0.1:0"}, extra...)
	go func() {
		exit <- run(ctx, args, stderr, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr.String(), exit, stderr
	case err := <-exit:
		t.Fatalf("server exited before ready: %v\n%s", err, stderr.String())
		return "", nil, nil
	}
}

func waitExit(t *testing.T, cancel context.CancelFunc, exit chan error, stderr *bytes.Buffer) {
	t.Helper()
	cancel()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("shutdown error: %v\n%s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not drain\n%s", stderr.String())
	}
}

// TestServeMetricsScrape exercises the live /metrics endpoint: after real
// traffic the Prometheus exposition must include the request counters,
// the corrected latency buckets (10s and +Inf), and the snapshot gauge.
func TestServeMetricsScrape(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, exit, stderr := startServerArgs(t, ctx)

	if status, _ := getJSON(t, base+"/v1/instances?concept=companies&k=5"); status != http.StatusOK {
		t.Fatalf("instances status %d", status)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := string(raw)
	for _, want := range []string{
		`probase_http_requests_total{endpoint="instances"} 1`,
		`probase_http_request_duration_seconds_bucket{endpoint="instances",le="10"}`,
		`probase_http_request_duration_seconds_bucket{endpoint="instances",le="+Inf"}`,
		"probase_snapshot_bytes",
		"probase_snapshot_nodes",
		"probase_process_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	waitExit(t, cancel, exit, stderr)
}

// TestServeRequestID checks the middleware contract on a live server: a
// fresh ID is issued when absent and an inbound ID is echoed back.
func TestServeRequestID(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, exit, stderr := startServerArgs(t, ctx)

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id == "" {
		t.Error("no X-Request-ID issued")
	}

	req, _ := http.NewRequest("GET", base+"/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "test-trace-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id != "test-trace-42" {
		t.Errorf("inbound request ID not echoed: got %q", id)
	}
	waitExit(t, cancel, exit, stderr)
}

// TestServeSlowlog turns the slow-query log on with a zero-distance
// threshold so every request qualifies, and expects warn records.
func TestServeSlowlog(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, exit, stderr := startServerArgs(t, ctx, "-slowlog", "1ns", "-log-format", "json")

	if status, _ := getJSON(t, base+"/v1/healthz"); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	waitExit(t, cancel, exit, stderr)
	if !strings.Contains(stderr.String(), "slow query") {
		t.Errorf("no slow-query record in logs:\n%s", stderr.String())
	}
}

// TestServePprofListener starts the optional pprof listener and fetches
// its index page.
func TestServePprofListener(t *testing.T) {
	// Reserve a port for the pprof listener; run() needs a concrete
	// address since only the main listener's port is reported on ready.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pprofAddr := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, exit, stderr := startServerArgs(t, ctx, "-pprof-addr", pprofAddr)

	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "goroutine") {
		t.Errorf("pprof index unexpected body: %.200s", raw)
	}
	waitExit(t, cancel, exit, stderr)
}

// TestServeVersionFlag verifies -version prints and exits cleanly.
func TestServeVersionFlag(t *testing.T) {
	var stderr bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &stderr, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "probase-serve version") {
		t.Errorf("stderr = %q", stderr.String())
	}
}
