package hearst

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Parse and ParsePartOf must never panic and must return structurally
// sane matches on arbitrary input.
func TestParseRobustnessProperty(t *testing.T) {
	pieces := []string{
		"such", "as", "and", "or", "other", "including", "especially",
		"than", ",", ".", ";", "!", "animals", "cats", "dogs", "companies",
		"IBM", "the", "of", "comprised", "consist", "", "  ", "\t",
		"Gone", "with", "Wind", "Proctor", "Gamble", "plants", "x",
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = pieces[rng.Intn(len(pieces))]
		}
		sentence := strings.Join(parts, " ")
		if m, ok := Parse(sentence); ok {
			if len(m.Supers) == 0 || len(m.Segments) == 0 {
				return false
			}
			for _, s := range m.Supers {
				if strings.TrimSpace(s) == "" {
					return false
				}
			}
			for _, seg := range m.Segments {
				if strings.TrimSpace(seg.Whole) == "" {
					return false
				}
			}
		}
		if po, ok := ParsePartOf(sentence); ok {
			if po.Whole == "" || len(po.Parts) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Raw byte noise (including invalid UTF-8) must not panic.
func TestParseBinaryNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		b := make([]byte, rng.Intn(120))
		rng.Read(b)
		s := string(b)
		Parse(s)
		ParsePartOf(s)
	}
}

// Parse is a pure function: identical inputs give identical outputs.
func TestParseDeterministic(t *testing.T) {
	s := "domestic animals other than dogs such as cats, wolves and fish live here."
	a, okA := Parse(s)
	b, okB := Parse(s)
	if okA != okB {
		t.Fatal("determinism broken")
	}
	if len(a.Supers) != len(b.Supers) || len(a.Segments) != len(b.Segments) {
		t.Fatal("outputs differ")
	}
}
