package prob

import (
	"math"
	"sync"
	"testing"

	"repro/internal/graph"
)

// companyGraph builds:
//
//	company -> {IBM x50, Microsoft x40, Xyz Inc x1}
//	company -> it company (x20) -> {Microsoft x30, IBM x10}
//	company -> big company (x15) -> {Microsoft x20}
func companyGraph() (*graph.Store, map[string]graph.NodeID) {
	g := graph.NewStore()
	ids := map[string]graph.NodeID{}
	for _, l := range []string{"company", "it company", "big company", "IBM", "Microsoft", "Xyz Inc"} {
		ids[l] = g.Intern(l)
	}
	g.AddEdge(ids["company"], ids["IBM"], 50, 0.99)
	g.AddEdge(ids["company"], ids["Microsoft"], 40, 0.99)
	g.AddEdge(ids["company"], ids["Xyz Inc"], 1, 0.5)
	g.AddEdge(ids["company"], ids["it company"], 20, 0.95)
	g.AddEdge(ids["it company"], ids["Microsoft"], 30, 0.99)
	g.AddEdge(ids["it company"], ids["IBM"], 10, 0.99)
	g.AddEdge(ids["company"], ids["big company"], 15, 0.9)
	g.AddEdge(ids["big company"], ids["Microsoft"], 20, 0.95)
	return g, ids
}

func TestReachAlgorithm3(t *testing.T) {
	g, ids := companyGraph()
	ty, err := NewTypicality(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := ty.Reach(ids["company"], ids["company"]); got != 1 {
		t.Errorf("P(x,x) = %v, want 1", got)
	}
	// Direct edge: P(company, it company) = 0.95.
	if got := ty.Reach(ids["company"], ids["it company"]); math.Abs(got-0.95) > 1e-9 {
		t.Errorf("P(company, it company) = %v, want 0.95", got)
	}
	// Microsoft has three paths from company: direct (0.99),
	// via it company (0.95*0.99), via big company (0.9*0.95).
	want := 1 - (1-0.99)*(1-0.95*0.99)*(1-0.9*0.95)
	if got := ty.Reach(ids["company"], ids["Microsoft"]); math.Abs(got-want) > 1e-9 {
		t.Errorf("P(company, Microsoft) = %v, want %v", got, want)
	}
	// No reverse reachability.
	if got := ty.Reach(ids["Microsoft"], ids["company"]); got != 0 {
		t.Errorf("reverse reach = %v, want 0", got)
	}
}

func TestTypicalityRanking(t *testing.T) {
	g, ids := companyGraph()
	ty, err := NewTypicality(g)
	if err != nil {
		t.Fatal(err)
	}
	ranked := ty.InstancesOf(ids["company"])
	if len(ranked) != 3 {
		t.Fatalf("instances = %v", ranked)
	}
	// Microsoft gathers indirect evidence through both sub-concepts
	// (Eq. 4's point: Microsoft-as-IT-company supports Microsoft-as-
	// company) and overtakes IBM despite fewer direct sightings.
	if ranked[0].Label != "Microsoft" {
		t.Errorf("top instance = %v, want Microsoft", ranked[0])
	}
	if ranked[2].Label != "Xyz Inc" {
		t.Errorf("least typical = %v, want Xyz Inc", ranked[2])
	}
	var sum float64
	for _, r := range ranked {
		if r.Score < 0 || r.Score > 1 {
			t.Errorf("score %v out of range", r)
		}
		sum += r.Score
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("typicality does not normalise: sum = %v", sum)
	}
}

func TestTypicalityIndirectEvidence(t *testing.T) {
	// Eq. 3 (direct only) vs Eq. 4 (with descendants): without indirect
	// evidence IBM (50 direct) beats Microsoft (40 direct); with it,
	// Microsoft wins. We verify the Eq. 4 behaviour and that removing the
	// sub-concept edges flips the order.
	g, ids := companyGraph()
	ty, _ := NewTypicality(g)
	full := ty.InstancesOf(ids["company"])
	if full[0].Label != "Microsoft" {
		t.Fatalf("full ranking top = %v", full[0])
	}

	flat := graph.NewStore()
	c := flat.Intern("company")
	ibm := flat.Intern("IBM")
	ms := flat.Intern("Microsoft")
	flat.AddEdge(c, ibm, 50, 0.99)
	flat.AddEdge(c, ms, 40, 0.99)
	ty2, _ := NewTypicality(flat)
	direct := ty2.InstancesOf(c)
	if direct[0].Label != "IBM" {
		t.Fatalf("direct-only ranking top = %v, want IBM", direct[0])
	}
}

func TestConceptsOfAbstraction(t *testing.T) {
	g, ids := companyGraph()
	ty, _ := NewTypicality(g)
	ranked := ty.ConceptsOf(ids["Microsoft"])
	if len(ranked) != 3 {
		t.Fatalf("concepts = %v", ranked)
	}
	if ranked[0].Label != "company" {
		t.Errorf("top concept = %v, want company (largest prior)", ranked[0])
	}
	var sum float64
	for _, r := range ranked {
		sum += r.Score
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("abstraction does not normalise: %v", sum)
	}
	if got := ty.ConceptsOf(ids["company"]); len(got) != 0 {
		t.Errorf("root has concepts: %v", got)
	}
}

func TestConceptsOfSetTightens(t *testing.T) {
	// Paper Section 5.3.2: {India} is typically a country; {India, China,
	// Brazil} together pick out the tighter concept.
	g := graph.NewStore()
	country := g.Intern("country")
	bric := g.Intern("bric country")
	india := g.Intern("India")
	china := g.Intern("China")
	brazil := g.Intern("Brazil")
	usa := g.Intern("USA")
	g.AddEdge(country, india, 30, 0.99)
	g.AddEdge(country, china, 30, 0.99)
	g.AddEdge(country, brazil, 20, 0.99)
	g.AddEdge(country, usa, 80, 0.99)
	g.AddEdge(country, bric, 10, 0.9)
	g.AddEdge(bric, india, 15, 0.99)
	g.AddEdge(bric, china, 15, 0.99)
	g.AddEdge(bric, brazil, 15, 0.99)
	ty, _ := NewTypicality(g)

	single, ok := ty.ConceptsOfSet([]graph.NodeID{india})
	if !ok || single[0].Label != "country" {
		t.Errorf("single abstraction = %v", single)
	}
	joint, ok := ty.ConceptsOfSet([]graph.NodeID{india, china, brazil})
	if !ok {
		t.Fatal("joint abstraction failed")
	}
	if joint[0].Label != "bric country" {
		t.Errorf("joint abstraction = %v, want bric country first", joint)
	}
	// A set with an unknown member still works on the known part.
	got, ok := ty.ConceptsOfSet([]graph.NodeID{india, graph.NoNode})
	if !ok || len(got) == 0 {
		t.Error("unknown member broke set abstraction")
	}
	// All unknown: not ok.
	if _, ok := ty.ConceptsOfSet([]graph.NodeID{graph.NoNode}); ok {
		t.Error("all-unknown set succeeded")
	}
}

func TestNewTypicalityRejectsCycle(t *testing.T) {
	g := graph.NewStore()
	a, b := g.Intern("a"), g.Intern("b")
	g.AddEdge(a, b, 1, 0.5)
	g.AddEdge(b, a, 1, 0.5)
	if _, err := NewTypicality(g); err == nil {
		t.Error("cycle accepted")
	}
}

func TestEdgePlausibilityFallback(t *testing.T) {
	if got := edgePlausibility(graph.Edge{Count: 1}); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("1 sighting = %v, want 0.5", got)
	}
	if got := edgePlausibility(graph.Edge{Count: 100}); got < 0.999 {
		t.Errorf("100 sightings = %v, want ~1", got)
	}
	if got := edgePlausibility(graph.Edge{Count: 5, Plausibility: 0.42}); got != 0.42 {
		t.Errorf("explicit plausibility overridden: %v", got)
	}
}

func TestTopK(t *testing.T) {
	rs := []Ranked{{"a", 3}, {"b", 2}, {"c", 1}}
	if got := TopK(rs, 2); len(got) != 2 || got[0].Label != "a" {
		t.Errorf("TopK = %v", got)
	}
	if got := TopK(rs, 10); len(got) != 3 {
		t.Errorf("TopK overflow = %v", got)
	}
}

// Typicality memoises T(i|x) lazily; concurrent queries from a serving
// layer must not race on the cache. Run with -race.
func TestTypicalityConcurrentQueries(t *testing.T) {
	g, ids := companyGraph()
	ty, err := NewTypicality(g)
	if err != nil {
		t.Fatal(err)
	}
	concepts := []graph.NodeID{ids["company"], ids["it company"], ids["big company"]}
	instances := []graph.NodeID{ids["IBM"], ids["Microsoft"], ids["Xyz Inc"]}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				x := concepts[(w+i)%len(concepts)]
				if rs := ty.InstancesOf(x); len(rs) == 0 {
					t.Errorf("InstancesOf(%d) empty", x)
					return
				}
				inst := instances[(w+i)%len(instances)]
				ty.ConceptsOf(inst)
				ty.ConceptsOfSet([]graph.NodeID{inst})
				ty.Reach(x, inst)
			}
		}(w)
	}
	wg.Wait()
}
