// Package core is the public face of the Probase reproduction: it wires
// the iterative extractor (Section 2), the taxonomy builder (Section 3)
// and the probabilistic layer (Section 4) into one pipeline, and exposes
// the two conceptualisation primitives the paper builds its applications
// on — instantiation (concept -> typical instances) and abstraction
// (instances -> typical concepts).
package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/extraction"
	"repro/internal/graph"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/prob"
	"repro/internal/taxonomy"
)

// Config assembles the pipeline stages' configurations.
type Config struct {
	Extraction extraction.Config
	Taxonomy   taxonomy.Config
	// Oracle labels training pairs for the plausibility model (the paper
	// uses WordNet; the reproduction uses a reference taxonomy). With a
	// nil oracle the Naive Bayes layer stays uninformative and
	// plausibility degrades to the count-based noisy-or.
	Oracle prob.Oracle
	// Workers bounds the worker pool of every parallel build stage:
	// extraction's map phase, the horizontal and vertical taxonomy
	// merges, plausibility annotation and the Algorithm 3 DP. It is
	// propagated to the extraction and taxonomy configs unless those
	// already set their own. The built Probase is byte-identical at
	// every worker count (see ARCHITECTURE.md); <= 0 means GOMAXPROCS.
	Workers int
	// Reporter receives stage telemetry from the whole pipeline. It is
	// propagated to the extraction and taxonomy stages unless those
	// configs carry their own reporter. Nil discards everything.
	Reporter obs.StageReporter
}

// BuildInfo reports what the pipeline did.
type BuildInfo struct {
	Rounds   []extraction.RoundStats
	Taxonomy taxonomy.BuildStats
	Parsed   int
	// Delta reports the incremental work of a DeltaBuild (zero-valued
	// except FullBuild after a from-scratch Build).
	Delta DeltaStats
}

// Probase is a built probabilistic taxonomy.
type Probase struct {
	// Store is Γ, the extracted pair store with evidence. Nil when the
	// Probase was loaded from a snapshot.
	Store *kb.Store
	// Graph is the taxonomy DAG with plausibility-annotated edges. After
	// Build, Load or Merge it is the immutable CSR view (*graph.Frozen);
	// Rebind can swap in any other graph.Reader backend.
	Graph graph.Reader
	// Senses maps each concept label to its sense node labels.
	Senses map[string][]string
	// Info describes the build. Zero when loaded from a snapshot.
	Info BuildInfo
	// Extraction is the raw extraction result (per-round pair attribution
	// for the iteration experiments). Nil when loaded from a snapshot.
	Extraction *extraction.Result
	// Format records the on-disk snapshot format this Probase was loaded
	// from — the 4-byte magic ("PBGR", "PBC2", "PBFL"); empty for an
	// in-memory build. internal/snapshot sets it; the serving layer
	// reports it on /v1/healthz.
	Format string
	// State is the resumable build residue a DeltaBuild extends from.
	// Populated by Build and DeltaBuild; persisted by SaveFull; nil for
	// graph-only snapshots.
	State *BuildState

	typ   *prob.Typicality
	model *prob.Model
}

// Build runs the full pipeline over corpus sentences: the staged
// sequence extract -> taxonomy -> train -> score -> typicality (see
// pipeline.go). DeltaBuild runs the same stages with dirty-set reuse.
func Build(inputs []extraction.Input, cfg Config) (*Probase, error) {
	p := newPipeline(cfg)
	p.stageExtract(inputs)
	p.stageTaxonomy()
	p.stageTrain()
	p.stageScore()
	if err := p.stageTypicality(nil, nil); err != nil {
		return nil, err
	}
	return p.finish(), nil
}

// AnnotatePlausibility scores every taxonomy edge with the evidence
// model's plausibility and writes the scores back onto the graph,
// returning the number of edges annotated (stage "prob.annotate").
//
// Scoring fans out per super-concept: Model.Plausibility only reads the
// trained Naive Bayes tables and the RWMutex-guarded Γ store, and the
// graph reads (Concepts, Label, Children) never see a concurrent write
// because scores land in per-concept buffers that a serial loop applies
// in Concepts() order afterwards. Plausibility values are not read back
// during scoring, so deferring the writes cannot change any score and
// the annotated graph is byte-identical at every worker count.
func AnnotatePlausibility(g *graph.Store, model *prob.Model, workers int, rep obs.StageReporter) int64 {
	rep = obs.ReporterOrNop(rep)
	rep.StageStart(obs.StageProbAnnotate)
	annStart := time.Now()
	workers = parallel.Workers(workers)
	type scoredEdge struct {
		to graph.NodeID
		p  float64
	}
	concepts := g.Concepts()
	rows := make([][]scoredEdge, len(concepts))
	_ = parallel.ForEach(context.Background(), workers, len(concepts), func(i int) error {
		from := concepts[i]
		x := BaseLabel(g.Label(from))
		var row []scoredEdge
		for _, e := range g.Children(from) {
			y := BaseLabel(g.Label(e.To))
			if p := model.Plausibility(x, y); p > 0 {
				row = append(row, scoredEdge{to: e.To, p: p})
			}
		}
		rows[i] = row
		return nil
	})
	annotated := int64(0)
	for i, row := range rows {
		for _, se := range row {
			g.AddEdge(concepts[i], se.to, 0, se.p)
			annotated++
		}
	}
	rep.Count(obs.StageProbAnnotate, "edges_annotated", annotated)
	rep.Count(obs.StageProbAnnotate, "workers", int64(workers))
	rep.StageEnd(obs.StageProbAnnotate, time.Since(annStart))
	return annotated
}

func oracleOrUnknown(o prob.Oracle) prob.Oracle {
	if o != nil {
		return o
	}
	return func(x, y string) (bool, bool) { return false, false }
}

// BaseLabel strips the sense suffix from a taxonomy node label:
// "plant#2" -> "plant".
func BaseLabel(nodeLabel string) string {
	if i := strings.LastIndex(nodeLabel, "#"); i > 0 {
		return nodeLabel[:i]
	}
	return nodeLabel
}

// SensesOf returns the sense node labels of a concept surface form
// ("plants" -> ["plant#1", "plant#2"]), dominant sense first.
func (p *Probase) SensesOf(concept string) []string {
	key := extraction.CanonicalSuper(concept)
	if senses := p.Senses[key]; len(senses) > 0 {
		return senses
	}
	if p.Graph.Lookup(key) != graph.NoNode {
		return []string{key}
	}
	return nil
}

// conceptNode resolves a concept surface form to its dominant sense node.
func (p *Probase) conceptNode(concept string) (graph.NodeID, bool) {
	senses := p.SensesOf(concept)
	if len(senses) == 0 {
		return 0, false
	}
	id := p.Graph.Lookup(senses[0])
	return id, id != graph.NoNode
}

// InstancesOf returns the top-k typical instances of the concept's
// dominant sense, by T(i|x) — the paper's instantiation primitive.
func (p *Probase) InstancesOf(concept string, k int) []prob.Ranked {
	id, ok := p.conceptNode(concept)
	if !ok {
		return nil
	}
	return prob.TopK(p.typ.InstancesOf(id), k)
}

// InstancesOfSense ranks instances of one specific sense node label.
func (p *Probase) InstancesOfSense(senseLabel string, k int) []prob.Ranked {
	id := p.Graph.Lookup(senseLabel)
	if id == graph.NoNode {
		return nil
	}
	return prob.TopK(p.typ.InstancesOf(id), k)
}

// ConceptsOf returns the top-k concepts of a term by the abstraction
// typicality T(x|i).
func (p *Probase) ConceptsOf(term string, k int) []prob.Ranked {
	id := p.lookupTerm(term)
	if id == graph.NoNode {
		return nil
	}
	return prob.TopK(p.typ.ConceptsOf(id), k)
}

// Conceptualize abstracts a set of terms jointly (Section 5.3.2: India,
// China, Brazil -> BRIC country / emerging market). Unknown terms are
// ignored; ok is false when no term is known.
func (p *Probase) Conceptualize(terms []string, k int) ([]prob.Ranked, bool) {
	ids := make([]graph.NodeID, len(terms))
	for i, term := range terms {
		ids[i] = p.lookupTerm(term)
	}
	ranked, ok := p.typ.ConceptsOfSet(ids)
	if !ok {
		return nil, false
	}
	return prob.TopK(ranked, k), true
}

// lookupTerm resolves an instance or concept surface form to a node.
// Multi-sense concept labels resolve to their dominant sense.
func (p *Probase) lookupTerm(term string) graph.NodeID {
	if id := p.Graph.Lookup(extraction.CanonicalSub(term)); id != graph.NoNode {
		return id
	}
	if id := p.Graph.Lookup(extraction.CanonicalSuper(term)); id != graph.NoNode {
		return id
	}
	if id, ok := p.conceptNode(term); ok {
		return id
	}
	// Sense-qualified labels pass through.
	return p.Graph.Lookup(term)
}

// Plausibility returns P(x, y) for an isA claim. With a live model it is
// the noisy-or over evidence; after Load it is the stored edge value.
func (p *Probase) Plausibility(x, y string) float64 {
	cx, cy := extraction.CanonicalSuper(x), extraction.CanonicalSub(y)
	if p.model != nil && p.Store != nil {
		if v := p.model.Plausibility(cx, cy); v > 0 {
			return v
		}
		// Fall through: the pair may exist only in the graph (merged or
		// inferred), not in Γ.
	}
	// x sits in super-concept position: prefer its concept sense over a
	// dangling leaf that happens to share the label.
	from, ok := p.conceptNode(cx)
	if !ok {
		from = p.lookupTerm(cx)
	}
	to := p.lookupTerm(cy)
	if from == graph.NoNode || to == graph.NoNode {
		return 0
	}
	if e, ok := p.Graph.EdgeBetween(from, to); ok && e.Plausibility > 0 {
		return e.Plausibility
	}
	// No scored direct edge: fall back to the Algorithm 3 reachability
	// P(x,y) — the probability that at least one path connects x to y.
	return p.typ.Reach(from, to)
}

// Typicality exposes the typicality engine for advanced callers
// (applications that need Reach or sense-level scoring).
func (p *Probase) Typicality() *prob.Typicality { return p.typ }

// Merge imports another taxonomy's edges by label and returns a new
// Probase — the Section 5.2 remark that "the instances of large concepts
// in Freebase ... can be easily merged into Probase". A source concept
// label that matches one of ours attaches to our dominant sense;
// everything else is interned fresh. Counts accumulate; imported edges
// keep their plausibility. Equivalent to MergeObserved(other, 0, nil).
func (p *Probase) Merge(other graph.Reader) (*Probase, error) {
	return p.MergeObserved(other, 0, nil)
}

// MergeObserved is Merge on the delta machinery: the frozen base is
// thawed (graph.NewBuilderFrom), the import applied, and — when a live
// evidence model is available — plausibility re-annotated over the
// merged graph, so edges whose accumulated counts changed the noisy-or
// are rescored instead of keeping stale values. Imported pairs unknown
// to Γ score zero and keep their stored plausibility. workers bounds the
// annotation and typicality pools (<= 0 means GOMAXPROCS); rep receives
// the stage telemetry (nil discards it).
func (p *Probase) MergeObserved(other graph.Reader, workers int, rep obs.StageReporter) (*Probase, error) {
	g := graph.NewBuilderFrom(p.Graph)
	resolve := func(label string, conceptPosition bool) graph.NodeID {
		if conceptPosition {
			if senses := p.Senses[extraction.CanonicalSuper(label)]; len(senses) > 0 {
				return g.Intern(senses[0])
			}
		}
		if id := g.Lookup(label); id != graph.NoNode {
			return id
		}
		return g.Intern(label)
	}
	type pending struct {
		from, to graph.NodeID
		e        graph.Edge
	}
	var edges []pending
	for id := 0; id < other.NumNodes(); id++ {
		fromLabel := other.Label(graph.NodeID(id))
		for _, e := range other.Children(graph.NodeID(id)) {
			edges = append(edges, pending{
				from: resolve(fromLabel, true),
				to:   resolve(other.Label(e.To), false),
				e:    e,
			})
		}
	}
	skipped := 0
	for _, pe := range edges {
		if pe.from == pe.to || g.HasPath(pe.to, pe.from) {
			skipped++
			continue
		}
		g.AddEdge(pe.from, pe.to, pe.e.Count, pe.e.Plausibility)
	}
	if p.model != nil && p.Store != nil {
		// Accumulated counts feed the count-based fallback and the
		// beyond-cap extrapolation, so merged-in sightings can move a
		// pair's noisy-or; rescore rather than serve stale values.
		AnnotatePlausibility(g, p.model, workers, rep)
	}
	fz := g.Freeze()
	typ, err := prob.New(fz, prob.Options{Workers: workers, Reporter: rep})
	if err != nil {
		return nil, fmt.Errorf("core: merge broke the DAG: %w", err)
	}
	return &Probase{
		Store:      p.Store,
		Graph:      fz,
		Senses:     sensesFromGraph(fz),
		Info:       p.Info,
		Extraction: p.Extraction,
		Format:     p.Format,
		// State is deliberately dropped: a DeltaBuild reassembles the graph
		// from the extraction/merge state alone and would silently lose the
		// imported edges. Merge after delta-building, not before.
		typ:   typ,
		model: p.model,
	}, nil
}

// Rebind returns a Probase answering queries from g instead of the
// current graph — the storage-backend swap seam. g must describe the
// same taxonomy (typically the Builder thaw or Frozen view of p.Graph);
// the typicality engine is rebuilt over it, everything else is shared.
func (p *Probase) Rebind(g graph.Reader) (*Probase, error) {
	typ, err := prob.NewTypicality(g)
	if err != nil {
		return nil, fmt.Errorf("core: rebind: %w", err)
	}
	return &Probase{
		Store:      p.Store,
		Graph:      g,
		Senses:     p.Senses,
		Info:       p.Info,
		Extraction: p.Extraction,
		Format:     p.Format,
		typ:        typ,
		model:      p.model,
	}, nil
}

// SnapshotVersionDefault is the snapshot format written when the caller
// does not pick one: v2 "PBC2", the CSR layout the serving path loads
// with a single sequential read. Pass 1 to SaveVersion for the legacy
// adjacency-list "PBGR" format.
const SnapshotVersionDefault = 2

// Save writes the taxonomy snapshot (graph, counts, plausibilities) in
// the default format version. Γ and the evidence model are rebuildable
// from the corpus and are not persisted.
func (p *Probase) Save(w io.Writer) error { return p.SaveVersion(w, SnapshotVersionDefault) }

// SaveVersion writes the taxonomy snapshot in an explicit format
// version: 1 = legacy "PBGR" adjacency lists, 2 = CSR "PBC2". Load
// reads both.
func (p *Probase) SaveVersion(w io.Writer, version int) error {
	return graph.WriteSnapshot(w, p.Graph, version)
}

// Load reads a snapshot written by Save (either format version) and
// rebuilds the query engine over the CSR view.
func Load(r io.Reader) (*Probase, error) {
	g, err := graph.LoadFrozen(r)
	if err != nil {
		return nil, err
	}
	return FromFrozen(g)
}

// FromFrozen builds the query engine over an already-loaded graph view
// — the seam the memory-mapped loading path enters through
// (snapshot.OpenMapped): graph.LoadMapped produces the Frozen, this
// wires typicality and the sense index over it. Also accepts any other
// Reader.
func FromFrozen(g graph.Reader) (*Probase, error) {
	typ, err := prob.NewTypicality(g)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot is not a DAG: %w", err)
	}
	return &Probase{Graph: g, Senses: sensesFromGraph(g), typ: typ}, nil
}

// Close releases resources held by the graph backend — for a
// memory-mapped snapshot, the mapping itself. After Close on a mapped
// Probase every label string and edge slice previously obtained is
// invalid, so no query may run concurrently with or after it; the
// serving layer guarantees that by refcounting snapshot epochs and
// closing only when the last in-flight request drains. Idempotent, and
// a no-op for heap-backed graphs.
func (p *Probase) Close() error {
	if c, ok := p.Graph.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Mapped reports whether the graph backend is a zero-copy view of a
// memory-mapped snapshot. Surfaced on /v1/healthz so operators can
// confirm which storage mode a replica runs.
func (p *Probase) Mapped() bool {
	if m, ok := p.Graph.(interface{ Mapped() bool }); ok {
		return m.Mapped()
	}
	return false
}

// sensesFromGraph rebuilds the concept -> sense-node index from node
// labels. Sense names are ordered by dominance at build time; restore
// that order numerically ("x#2" before "x#10").
func sensesFromGraph(g graph.Reader) map[string][]string {
	senses := make(map[string][]string)
	for _, id := range g.Concepts() {
		label := g.Label(id)
		senses[BaseLabel(label)] = append(senses[BaseLabel(label)], label)
	}
	for _, list := range senses {
		sort.Slice(list, func(i, j int) bool {
			return senseIndex(list[i]) < senseIndex(list[j])
		})
	}
	return senses
}

// senseIndex extracts the numeric sense suffix ("plant#2" -> 2); bare
// labels rank first.
func senseIndex(label string) int {
	i := strings.LastIndex(label, "#")
	if i <= 0 {
		return 0
	}
	n := 0
	for _, r := range label[i+1:] {
		if r < '0' || r > '9' {
			return 0
		}
		n = n*10 + int(r-'0')
	}
	return n
}
