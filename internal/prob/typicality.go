package prob

import (
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Ranked is a label with a probability score, sorted descending in all
// APIs that return slices of it.
type Ranked struct {
	Label string
	Score float64
}

// Typicality computes T(i|x) (instantiation) and T(x|i) (abstraction)
// over a plausibility-annotated taxonomy DAG, per Section 4.2.
//
// A Typicality is safe for concurrent use by multiple goroutines once
// NewTypicality returns: the reachability table is immutable after
// construction and the memoised T(i|x) tables are guarded by a lock.
type Typicality struct {
	g *graph.Store
	// reach holds P(x,y): the probability that at least one path connects
	// x down to y, from Algorithm 3. Keyed by x<<32|y. P(x,x)=1 implicit.
	reach map[uint64]float64
	// instMu guards instCache; queries memoise lazily, so concurrent
	// readers race on the map without it.
	instMu sync.RWMutex
	// instCache memoises the normalised T(i|x) table per concept.
	instCache map[graph.NodeID][]Ranked
	// conceptMass is the prior weight of each concept (its outgoing
	// evidence mass), used by the Bayes inversion for T(x|i).
	conceptMass map[graph.NodeID]float64
	totalMass   float64
}

func key(x, y graph.NodeID) uint64 { return uint64(x)<<32 | uint64(y) }

// NewTypicality runs Algorithm 3 over the DAG and prepares the caches.
// The graph's edges must carry counts; plausibilities default to a
// count-saturating estimate when absent (0).
func NewTypicality(g *graph.Store) (*Typicality, error) {
	return NewTypicalityObserved(g, nil)
}

// NewTypicalityObserved is NewTypicality with stage telemetry: the
// Algorithm 3 reachability DP is timed and its table size reported
// under stage "prob.algorithm3". A nil reporter discards it.
func NewTypicalityObserved(g *graph.Store, reporter obs.StageReporter) (*Typicality, error) {
	rep := obs.ReporterOrNop(reporter)
	rep.StageStart(obs.StageProbAlgorithm3)
	dpStart := time.Now()
	t := &Typicality{
		g:           g,
		reach:       make(map[uint64]float64),
		instCache:   make(map[graph.NodeID][]Ranked),
		conceptMass: make(map[graph.NodeID]float64),
	}
	levels, err := g.TopoLevels()
	if err != nil {
		return nil, err
	}
	// Algorithm 3: traverse top-down; when a node y is reached, every
	// ancestor x of its parents already has P(x, parent) computed.
	//
	//	P(x,y) = 1 - Π_{z ∈ Parent(y)} (1 - P(z,y) · P(x,z))
	for _, level := range levels {
		for _, y := range level {
			parents := g.Parents(y)
			if len(parents) == 0 {
				continue
			}
			// Candidate ancestors: parents plus every x with P(x,z) known.
			anc := make(map[graph.NodeID]bool)
			for _, pe := range parents {
				anc[pe.To] = true
			}
			for _, pe := range parents {
				for _, x := range g.Ancestors(pe.To) {
					anc[x] = true
				}
			}
			xs := make([]graph.NodeID, 0, len(anc))
			for x := range anc {
				xs = append(xs, x)
			}
			sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
			for _, x := range xs {
				q := 1.0
				for _, pe := range parents {
					pxz := 1.0
					if x != pe.To {
						pxz = t.reach[key(x, pe.To)]
					}
					q *= 1 - edgePlausibility(pe)*pxz
				}
				if p := 1 - q; p > 0 {
					t.reach[key(x, y)] = p
				}
			}
		}
	}
	for _, x := range g.Concepts() {
		var m float64
		for _, e := range g.Children(x) {
			m += float64(e.Count) * edgePlausibility(e)
		}
		t.conceptMass[x] = m
		t.totalMass += m
	}
	rep.Count(obs.StageProbAlgorithm3, "reach_entries", int64(len(t.reach)))
	rep.Count(obs.StageProbAlgorithm3, "topo_levels", int64(len(levels)))
	rep.Count(obs.StageProbAlgorithm3, "concepts", int64(len(t.conceptMass)))
	rep.StageEnd(obs.StageProbAlgorithm3, time.Since(dpStart))
	return t, nil
}

// edgePlausibility returns the edge's plausibility, substituting a
// count-saturating estimate when the edge was never scored.
func edgePlausibility(e graph.Edge) float64 {
	if e.Plausibility > 0 {
		return e.Plausibility
	}
	// 1 - 2^-n, capped: repeated sightings make a claim plausible.
	n := e.Count
	if n > 10 {
		n = 10
	}
	p := 1.0
	for i := int64(0); i < n; i++ {
		p *= 0.5
	}
	return 1 - p
}

// Reach returns P(x, y), the probability that some path connects x to y.
func (t *Typicality) Reach(x, y graph.NodeID) float64 {
	if x == y {
		return 1
	}
	return t.reach[key(x, y)]
}

// InstancesOf returns the instances of concept x ranked by typicality
// T(i|x) (Eq. 4): evidence from x itself and from every descendant
// concept y, weighted by P(x,y) · n(y,i) · P(y,i), normalised over Ix.
func (t *Typicality) InstancesOf(x graph.NodeID) []Ranked {
	t.instMu.RLock()
	cached, ok := t.instCache[x]
	t.instMu.RUnlock()
	if ok {
		return cached
	}
	scores := make(map[graph.NodeID]float64)
	concepts := append([]graph.NodeID{x}, t.g.Descendants(x)...)
	for _, y := range concepts {
		if t.g.Kind(y) != graph.KindConcept {
			continue
		}
		pxy := t.Reach(x, y)
		if pxy == 0 {
			continue
		}
		for _, e := range t.g.Children(y) {
			if t.g.Kind(e.To) != graph.KindInstance {
				continue
			}
			scores[e.To] += pxy * float64(e.Count) * edgePlausibility(e)
		}
	}
	var total float64
	for _, s := range scores {
		total += s
	}
	out := make([]Ranked, 0, len(scores))
	for i, s := range scores {
		score := s
		if total > 0 {
			score = s / total
		}
		out = append(out, Ranked{Label: t.g.Label(i), Score: score})
	}
	sortRanked(out)
	t.instMu.Lock()
	t.instCache[x] = out
	t.instMu.Unlock()
	return out
}

// ConceptsOf returns the concepts an instance belongs to, ranked by the
// abstraction typicality T(x|i) obtained from T(i|x) by Bayes' rule with
// the concept-mass prior.
func (t *Typicality) ConceptsOf(i graph.NodeID) []Ranked {
	type cand struct {
		x graph.NodeID
		p float64
	}
	var cands []cand
	var norm float64
	for _, x := range t.g.Ancestors(i) {
		if t.g.Kind(x) != graph.KindConcept {
			continue
		}
		tix := t.instanceScore(x, i)
		if tix <= 0 {
			continue
		}
		prior := t.conceptMass[x] / t.totalMass
		p := tix * prior
		cands = append(cands, cand{x, p})
		norm += p
	}
	out := make([]Ranked, 0, len(cands))
	for _, c := range cands {
		p := c.p
		if norm > 0 {
			p = c.p / norm
		}
		out = append(out, Ranked{Label: t.g.Label(c.x), Score: p})
	}
	sortRanked(out)
	return out
}

// instanceScore returns T(i|x) for one instance from the cached table.
func (t *Typicality) instanceScore(x, i graph.NodeID) float64 {
	label := t.g.Label(i)
	for _, r := range t.InstancesOf(x) {
		if r.Label == label {
			return r.Score
		}
	}
	return 0
}

// ConceptsOfSet conceptualises a set of instances jointly: assuming the
// instances are independently drawn from one concept (the Bayesian
// reading of Section 5.3.2), score(x) ∝ prior(x) · Π_i T(i|x). Instances
// unknown to the taxonomy are ignored; ok=false when none is known.
func (t *Typicality) ConceptsOfSet(instances []graph.NodeID) ([]Ranked, bool) {
	known := instances[:0:0]
	for _, i := range instances {
		if i != graph.NoNode {
			known = append(known, i)
		}
	}
	if len(known) == 0 {
		return nil, false
	}
	// Candidate concepts: ancestors of every known instance.
	counts := make(map[graph.NodeID]int)
	for _, i := range known {
		for _, x := range t.g.Ancestors(i) {
			if t.g.Kind(x) == graph.KindConcept {
				counts[x]++
			}
		}
	}
	var cands []graph.NodeID
	for x, c := range counts {
		if c == len(known) {
			cands = append(cands, x)
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })
	var out []Ranked
	var norm float64
	for _, x := range cands {
		score := t.conceptMass[x] / t.totalMass
		for _, i := range known {
			score *= t.instanceScore(x, i)
		}
		if score > 0 {
			out = append(out, Ranked{Label: t.g.Label(x), Score: score})
			norm += score
		}
	}
	for i := range out {
		out[i].Score /= norm
	}
	sortRanked(out)
	return out, len(out) > 0
}

func sortRanked(rs []Ranked) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Label < rs[j].Label
	})
}

// TopK truncates a ranked list to its first k entries.
func TopK(rs []Ranked, k int) []Ranked {
	if k < len(rs) {
		return rs[:k]
	}
	return rs
}
