package snapshot

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
	"repro/internal/graph"
)

// regen rewrites the checked-in v1 fixtures from the current builder:
//
//	go test ./internal/snapshot -run TestGoldenV1 -regen
//
// The fixtures pin the legacy on-disk format, so regenerate them only
// when the *builder* output intentionally changes — never to paper over
// a loader regression.
var regen = flag.Bool("regen", false, "rewrite golden v1 snapshot fixtures")

const (
	goldenGraphV1 = "testdata/v1-graph.snap"
	goldenFullV1  = "testdata/v1-full.snap"
)

// goldenProbase builds the richer taxonomy the fixtures snapshot: a
// synthetic corpus large enough that the graph has real fan-out,
// multi-parent instances and sense splits, unlike the handcrafted
// sentences in buildProbase.
func goldenProbase(t *testing.T) *core.Probase {
	t.Helper()
	w := corpus.DefaultWorld(1)
	c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: 4000, Seed: 11}).Generate()
	inputs := make([]extraction.Input, len(c.Sentences))
	for i, s := range c.Sentences {
		inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
	}
	pb, err := core.Build(inputs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

func goldenPath(t *testing.T, name string) string {
	t.Helper()
	if *regen {
		pb := goldenProbase(t)
		var buf bytes.Buffer
		var err error
		if name == goldenFullV1 {
			err = pb.SaveFullVersion(&buf, 1)
		} else {
			err = pb.SaveVersion(&buf, 1)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(name), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(name, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", name, buf.Len())
	}
	return name
}

// queryFingerprint renders the full answer surface of a loaded taxonomy
// into one comparable string: ranked instances and concepts, pairwise
// plausibility and joint conceptualisation. Two snapshots answering
// queries identically produce identical fingerprints.
func queryFingerprint(pb *core.Probase) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes=%d edges=%d\n", pb.Graph.NumNodes(), pb.Graph.NumEdges())
	for _, concept := range []string{"animals", "companies", "countries"} {
		fmt.Fprintf(&sb, "instances(%s)=%v\n", concept, pb.InstancesOf(concept, 10))
	}
	for _, term := range []string{"IBM", "cats", "Google"} {
		fmt.Fprintf(&sb, "concepts(%s)=%v\n", term, pb.ConceptsOf(term, 10))
	}
	for _, pair := range [][2]string{{"animals", "cats"}, {"companies", "IBM"}, {"countries", "IBM"}} {
		fmt.Fprintf(&sb, "plaus(%s,%s)=%.12f\n", pair[0], pair[1], pb.Plausibility(pair[0], pair[1]))
	}
	if ranked, ok := pb.Conceptualize([]string{"China", "India"}, 5); ok {
		fmt.Fprintf(&sb, "conceptualize(China,India)=%v\n", ranked)
	}
	return sb.String()
}

// TestGoldenV1Fixtures loads the checked-in legacy snapshots and pins
// their content: the v1 reader must keep understanding bytes written
// before the CSR format existed.
func TestGoldenV1Fixtures(t *testing.T) {
	for _, tc := range []struct {
		name string
		path string
		full bool
	}{
		{"graph-only", goldenGraphV1, false},
		{"full", goldenFullV1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pb, err := Open(goldenPath(t, tc.path))
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := pb.Graph.(*graph.Frozen); !ok {
				t.Errorf("v1 fixture loaded as %T, want the frozen CSR view", pb.Graph)
			}
			if (pb.Store != nil) != tc.full {
				t.Errorf("Store presence = %v, want %v", pb.Store != nil, tc.full)
			}
			if rs := pb.InstancesOf("animals", 5); len(rs) == 0 {
				t.Error("fixture answers no instance queries")
			}
			if rs := pb.ConceptsOf("IBM", 5); len(rs) == 0 {
				t.Error("fixture answers no concept queries")
			}
		})
	}
}

// TestGoldenV1MatchesV2 is the compatibility bar: re-encoding a golden
// v1 snapshot as v2 and loading it back must answer every query
// byte-identically to the v1 original.
func TestGoldenV1MatchesV2(t *testing.T) {
	v1, err := Open(goldenPath(t, goldenGraphV1))
	if err != nil {
		t.Fatal(err)
	}
	var v2buf bytes.Buffer
	if err := v1.SaveVersion(&v2buf, 2); err != nil {
		t.Fatal(err)
	}
	if got := string(v2buf.Bytes()[:4]); got != "PBC2" {
		t.Fatalf("re-encoded magic = %q, want PBC2", got)
	}
	v2, err := Load(bytes.NewReader(v2buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, got := queryFingerprint(v1), queryFingerprint(v2)
	if want != got {
		t.Errorf("v1 and v2 snapshots answer differently:\nv1: %s\nv2: %s", want, got)
	}
}

// TestGoldenFullV1MatchesV2 covers the full "PBFL" flavour: the graph
// section re-encoded as CSR must leave Γ-backed answers untouched.
func TestGoldenFullV1MatchesV2(t *testing.T) {
	v1, err := Open(goldenPath(t, goldenFullV1))
	if err != nil {
		t.Fatal(err)
	}
	var v2buf bytes.Buffer
	if err := v1.SaveFullVersion(&v2buf, 2); err != nil {
		t.Fatal(err)
	}
	v2, err := Load(bytes.NewReader(v2buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Store == nil {
		t.Fatal("full round-trip lost the Γ store")
	}
	want, got := queryFingerprint(v1), queryFingerprint(v2)
	if want != got {
		t.Errorf("full v1 and v2 snapshots answer differently:\nv1: %s\nv2: %s", want, got)
	}
}
