// Command probase-build runs the full Probase pipeline over a corpus file
// (iterative extraction -> taxonomy construction -> probabilistic
// annotation) and writes a binary taxonomy snapshot.
//
// Usage:
//
//	probase-build -corpus corpus.tsv -o probase.bin [-scale 1] [-rounds 12] [-full]
//
// The -scale flag must match the scale the corpus was generated with; the
// expanded world is used as the plausibility model's training oracle (the
// role WordNet plays in the paper). With -full, Γ (evidence and
// co-occurrence statistics) is persisted alongside the graph.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "probase-build:", err)
		os.Exit(1)
	}
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("probase-build", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		corpusPath = fs.String("corpus", "corpus.tsv", "corpus file from corpusgen")
		out        = fs.String("o", "probase.bin", "output snapshot path")
		scale      = fs.Float64("scale", 1, "world scale used when generating the corpus")
		rounds     = fs.Int("rounds", 0, "max extraction rounds (0 = default)")
		workers    = fs.Int("workers", 0, "extraction workers (0 = GOMAXPROCS)")
		full       = fs.Bool("full", false, "also persist Γ (evidence, co-occurrence) for richer reload")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := os.Open(*corpusPath)
	if err != nil {
		return err
	}
	sentences, err := corpus.ReadSentences(f)
	f.Close()
	if err != nil {
		return err
	}
	inputs := make([]extraction.Input, len(sentences))
	for i, s := range sentences {
		inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
	}

	w := corpus.DefaultWorld(*scale)
	cfg := core.Config{
		Oracle: func(x, y string) (bool, bool) {
			if !w.KnownTerm(x) || !w.KnownTerm(y) {
				return false, false
			}
			return w.IsTrueIsA(x, y), true
		},
	}
	cfg.Extraction.MaxRounds = *rounds
	cfg.Extraction.Workers = *workers

	start := time.Now()
	pb, err := core.Build(inputs, cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	save := pb.Save
	if *full {
		save = pb.SaveFull
	}
	if err := save(of); err != nil {
		of.Close()
		return err
	}
	if err := of.Close(); err != nil {
		return err
	}

	st := pb.Store.Stats()
	fmt.Fprintf(stderr,
		"probase-build: %d sentences parsed, %d rounds, %d pairs, %d concepts; taxonomy %d nodes / %d edges; %v\n",
		pb.Info.Parsed, len(pb.Info.Rounds), st.Pairs, st.Supers,
		pb.Graph.NumNodes(), pb.Graph.NumEdges(), elapsed.Round(time.Millisecond))
	return nil
}
