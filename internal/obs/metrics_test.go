package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestPrometheusGolden locks the text exposition format: a registry
// with every metric kind and deterministic values must render
// byte-identically to testdata/exposition.golden.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("probase_http_requests_total", "Requests received.", L("endpoint", "instances")).Add(42)
	reg.Counter("probase_http_requests_total", "Requests received.", L("endpoint", "healthz")).Add(7)
	reg.Counter("probase_http_errors_total", "Responses with status >= 400.", L("endpoint", "instances")).Add(3)
	reg.Gauge("probase_http_inflight_requests", "Requests currently being served.").Set(2)
	reg.GaugeFunc("probase_snapshot_nodes", "Nodes in the loaded snapshot.", func() float64 { return 1234 })
	h := reg.Histogram("probase_http_request_duration_seconds", "Request latency in seconds.",
		nil, L("endpoint", "instances"))
	h.Observe(0.00005) // le 0.0001
	h.Observe(0.0001)  // boundary: still le 0.0001
	h.Observe(0.002)   // le 0.01
	h.Observe(0.5)     // le 1
	h.Observe(5)       // le 10
	h.Observe(60)      // +Inf only
	// A label value needing escaping.
	reg.Counter("probase_quoted_total", "Escaping check.", L("q", `a"b\c`)).Inc()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("x_seconds", "test", []float64{1, 10})
	h.Observe(1)    // le="1" (boundary is inclusive)
	h.Observe(1.5)  // le="10"
	h.Observe(10)   // le="10"
	h.Observe(10.5) // +Inf
	s := h.Snapshot()
	if got := s.Counts; got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Errorf("bucket counts = %v, want [1 2 1]", got)
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if want := 1 + 1.5 + 10 + 10.5; math.Abs(s.Sum-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`x_seconds_bucket{le="1"} 1`,
		`x_seconds_bucket{le="10"} 3`,
		`x_seconds_bucket{le="+Inf"} 4`,
		`x_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSameMetricSharedState: asking twice for the same name+labels must
// return the same underlying metric, and a different label set a
// different one.
func TestSameMetricSharedState(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c_total", "test", L("e", "x"))
	b := reg.Counter("c_total", "test", L("e", "x"))
	other := reg.Counter("c_total", "test", L("e", "y"))
	a.Inc()
	b.Inc()
	other.Inc()
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	if a.Value() != 2 || other.Value() != 1 {
		t.Errorf("values = %d / %d, want 2 / 1", a.Value(), other.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "test")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("m", "test")
}

// TestConcurrentObserves hammers one counter, one gauge, and one
// histogram from many goroutines; under -race this is the data-race
// check, and the totals must still add up.
func TestConcurrentObserves(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "test")
	g := reg.Gauge("g", "test")
	h := reg.Histogram("h_seconds", "test", nil)
	const (
		workers = 16
		perW    = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Add(1)
				h.ObserveDuration(time.Duration(i%7) * time.Millisecond)
			}
		}(w)
	}
	// Concurrent scrapes must not race with writers either.
	var scrapes sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			var buf bytes.Buffer
			reg.WritePrometheus(&buf)
		}()
	}
	wg.Wait()
	scrapes.Wait()
	if c.Value() != workers*perW {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perW)
	}
	if g.Value() != workers*perW {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*perW)
	}
	if s := h.Snapshot(); s.Count != workers*perW {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*perW)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "test")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("value = %d, want 5 (negative add must be ignored)", c.Value())
	}
}

func TestProcessGauges(t *testing.T) {
	reg := NewRegistry()
	RegisterProcessGauges(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"probase_process_goroutines",
		"probase_process_heap_alloc_bytes",
		"probase_process_gc_cycles_total",
	} {
		if !strings.Contains(buf.String(), want+" ") {
			t.Errorf("process gauge %s missing:\n%s", want, buf.String())
		}
	}
}
