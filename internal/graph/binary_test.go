package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s, _ := diamond()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != s.NumNodes() || got.NumEdges() != s.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			got.NumNodes(), got.NumEdges(), s.NumNodes(), s.NumEdges())
	}
	for id := 0; id < s.NumNodes(); id++ {
		n := NodeID(id)
		if got.Label(n) != s.Label(n) {
			t.Fatalf("label %d mismatch", id)
		}
		for _, e := range s.Children(n) {
			ge, ok := got.EdgeBetween(n, e.To)
			if !ok || ge.Count != e.Count || ge.Plausibility != e.Plausibility {
				t.Fatalf("edge %d->%d mismatch: %+v vs %+v", n, e.To, ge, e)
			}
		}
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := NewStore().Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 || got.NumEdges() != 0 {
		t.Error("empty store round trip not empty")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	s, _ := diamond()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip one byte in the middle.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, err := Load(bytes.NewReader(corrupt)); err == nil {
		t.Error("corrupted snapshot accepted")
	}

	// Truncate.
	if _, err := Load(bytes.NewReader(data[:len(data)-6])); err == nil {
		t.Error("truncated snapshot accepted")
	}

	// Bad magic.
	bad := append([]byte(nil), data...)
	copy(bad, "XXXX")
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("bad magic: err = %v", err)
	}

	// Empty input.
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestLoadChecksumError(t *testing.T) {
	s, _ := diamond()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] ^= 0x01 // flip checksum byte only
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrChecksum) {
		t.Errorf("err = %v, want ErrChecksum", err)
	}
}

// Property: random DAG-ish graphs survive a save/load round trip exactly.
func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		n := 2 + rng.Intn(40)
		for i := 0; i < n; i++ {
			s.Intern(randLabel(rng))
		}
		edges := rng.Intn(3 * n)
		for i := 0; i < edges; i++ {
			from := NodeID(rng.Intn(s.NumNodes()))
			to := NodeID(rng.Intn(s.NumNodes()))
			if from == to {
				continue
			}
			s.AddEdge(from, to, int64(rng.Intn(100)+1), rng.Float64())
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		if got.NumNodes() != s.NumNodes() || got.NumEdges() != s.NumEdges() {
			return false
		}
		for id := 0; id < s.NumNodes(); id++ {
			nid := NodeID(id)
			if got.Label(nid) != s.Label(nid) {
				return false
			}
			for _, e := range s.Children(nid) {
				ge, ok := got.EdgeBetween(nid, e.To)
				if !ok || ge != e {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randLabel(rng *rand.Rand) string {
	letters := "abcdefghijklmnopqrstuvwxyz "
	n := 1 + rng.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b) + string(rune('0'+rng.Intn(10))) + randSuffix(rng)
}

func randSuffix(rng *rand.Rand) string {
	// ensure uniqueness pressure is low but collisions possible; Intern dedups
	return string(rune('a' + rng.Intn(26)))
}
