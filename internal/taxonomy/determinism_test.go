package taxonomy

import (
	"bytes"
	"reflect"
	"testing"
)

// TestBuildDeterministicAcrossWorkers asserts the concurrency contract
// of the parallel merge stages: the taxonomy built at workers=8 is
// byte-identical (snapshot bytes, senses, operation counts) to the
// workers=1 build on the same extraction groups. CI runs this under
// -race, which also checks the fan-outs for data races.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	groups := benchGroups(6000)
	snapshot := func(workers int) ([]byte, map[string][]string, BuildStats) {
		res := Build(groups, Config{Workers: workers})
		var buf bytes.Buffer
		if err := res.Graph.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res.Senses, res.Stats
	}
	refBytes, refSenses, refStats := snapshot(1)
	for _, w := range []int{2, 8} {
		gotBytes, gotSenses, gotStats := snapshot(w)
		if !bytes.Equal(gotBytes, refBytes) {
			t.Errorf("workers=%d: snapshot bytes differ from serial build", w)
		}
		if !reflect.DeepEqual(gotSenses, refSenses) {
			t.Errorf("workers=%d: sense inventory differs from serial build", w)
		}
		if gotStats != refStats {
			t.Errorf("workers=%d: stats %+v, serial %+v", w, gotStats, refStats)
		}
	}
}
