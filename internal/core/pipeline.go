package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/extraction"
	"repro/internal/graph"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/prob"
	"repro/internal/taxonomy"
)

// BuildState is the resumable residue of a build: everything a delta
// build needs beyond the queryable Probase itself. It rides inside the
// full "PBFL" snapshot as an optional third section, so an operator can
// reload yesterday's snapshot and extend it over today's corpus delta
// without re-reading yesterday's corpus.
type BuildState struct {
	// Checkpoint is the extraction fold's boundary state (Γ at the last
	// chunk boundary, pending sentences, raw tail).
	Checkpoint *extraction.Checkpoint
	// Taxonomy is the per-label merge state; clean labels are reused
	// verbatim by the next build.
	Taxonomy *taxonomy.State
	// NB is the trained evidence model's count tables; the delta trainer
	// advances them by untrain/retrain of dirty pairs only.
	NB *prob.NaiveBayes
}

// DeltaStats reports the incremental work a DeltaBuild actually did, as
// opposed to what a full rebuild would have done. The same numbers go to
// the stage reporter; this struct surfaces them to callers (probase-build
// -stats-out).
type DeltaStats struct {
	DirtyRoots    int  `json:"dirty_roots"`    // extraction roots touched by the delta
	DirtyLabels   int  `json:"dirty_labels"`   // taxonomy labels re-merged
	ReusedLabels  int  `json:"reused_labels"`  // taxonomy labels kept verbatim
	DirtyPairs    int  `json:"dirty_pairs"`    // Γ pairs untrained + retrained
	RetrainedRows int  `json:"retrained_rows"` // evidence examples retrained
	DirtySeeds    int  `json:"dirty_seeds"`    // graph nodes seeding the Algorithm 3 re-run
	MergedSenses  int  `json:"merged_senses"`  // sense clusters in the delta output
	FullBuild     bool `json:"full_build"`     // true when built from scratch
}

// pipeline carries one build's intermediate products between its stages.
// Build and DeltaBuild run the same stage sequence; the delta variants
// reuse the previous build's state where the dirty-set analysis proves
// the full stage would recompute it unchanged:
//
//	extract   -> resume the fold from the checkpoint (extraction.Resume)
//	taxonomy  -> re-merge only dirty root labels (taxonomy.BuildDelta)
//	train     -> untrain/retrain only dirty pairs (prob.TrainDelta)
//	annotate  -> full (writes into the freshly assembled builder)
//	freeze    -> full (CSR encode is linear and cheap)
//	typicality-> recompute only the dirty closure's DP rows (prob.Options.Prev)
//
// Every delta stage is exact — the contract, tested stage by stage and
// end to end, is that the finished Probase is byte-identical to a
// from-scratch Build over the concatenated corpus.
type pipeline struct {
	cfg     Config
	workers int
	rep     obs.StageReporter

	res   *extraction.Result
	tax   *taxonomy.Result
	model *prob.Model
	fz    *graph.Frozen
	typ   *prob.Typicality
	stats DeltaStats
}

// newPipeline normalises the config: the shared reporter and worker
// bound propagate into each stage config unless that stage set its own,
// and the sense-evidence default applies exactly as in the monolithic
// Build it replaced.
func newPipeline(cfg Config) *pipeline {
	rep := obs.ReporterOrNop(cfg.Reporter)
	if cfg.Extraction.Reporter == nil {
		cfg.Extraction.Reporter = rep
	}
	if cfg.Taxonomy.Reporter == nil {
		cfg.Taxonomy.Reporter = rep
	}
	workers := parallel.Workers(cfg.Workers)
	if cfg.Extraction.Workers == 0 {
		cfg.Extraction.Workers = workers
	}
	if cfg.Taxonomy.Workers == 0 {
		cfg.Taxonomy.Workers = workers
	}
	if cfg.Taxonomy.Sim == nil && cfg.Taxonomy.MinSenseEvidence == 0 {
		// Default: drop single-sighting fragment senses; their pairs stay
		// queryable in Γ, but they would pollute the sense inventory.
		cfg.Taxonomy.MinSenseEvidence = 2
	}
	return &pipeline{cfg: cfg, workers: workers, rep: rep}
}

// stageExtract runs the iterative extraction fixpoint from scratch.
func (p *pipeline) stageExtract(inputs []extraction.Input) {
	p.res = extraction.Run(inputs, p.cfg.Extraction)
	p.stats.FullBuild = true
}

// stageResume continues the extraction fold from a checkpoint over the
// corpus delta.
func (p *pipeline) stageResume(cp *extraction.Checkpoint, inputs []extraction.Input) error {
	res, err := extraction.Resume(cp, inputs, p.cfg.Extraction)
	if err != nil {
		return err
	}
	p.res = res
	p.stats.DirtyRoots = len(res.DirtyRoots)
	return nil
}

// stageTaxonomy merges and assembles the taxonomy from scratch.
func (p *pipeline) stageTaxonomy() {
	p.tax = taxonomy.Build(p.res.Groups, p.cfg.Taxonomy)
	p.stats.MergedSenses = p.tax.Stats.Senses
}

// stageTaxonomyDelta re-merges only the labels the extraction delta
// touched and reassembles.
func (p *pipeline) stageTaxonomyDelta(prev *taxonomy.State) {
	p.tax = taxonomy.BuildDelta(prev, p.res.Groups, p.res.DirtyRoots, p.cfg.Taxonomy)
	p.stats.MergedSenses = p.tax.Stats.Senses
	dirty := make(map[string]bool, len(p.res.DirtyRoots))
	for _, r := range p.res.DirtyRoots {
		dirty[r] = true
	}
	for _, ls := range p.tax.State.Labels {
		if dirty[ls.Label] {
			p.stats.DirtyLabels++
		} else {
			p.stats.ReusedLabels++
		}
	}
}

// stageTrain trains the evidence model over the full Γ.
func (p *pipeline) stageTrain() {
	p.rep.StageStart(obs.StageProbTrain)
	start := time.Now()
	p.model = prob.Train(p.res.Store, oracleOrUnknown(p.cfg.Oracle))
	p.rep.StageEnd(obs.StageProbTrain, time.Since(start))
}

// stageTrainDelta advances the previous model over the Γ diff. The
// oracle must be the one the base model was trained with; with matching
// oracles the advanced model equals a full retrain bit for bit.
func (p *pipeline) stageTrainDelta(prevNB *prob.NaiveBayes, base *kb.Store) {
	p.rep.StageStart(obs.StageProbTrain)
	start := time.Now()
	model, stats := prob.TrainDelta(prevNB, base, p.res.Store, oracleOrUnknown(p.cfg.Oracle))
	p.model = model
	p.stats.DirtyPairs = stats.DirtyPairs
	p.stats.RetrainedRows = stats.Retrained
	p.rep.Count(obs.StageProbTrain, "dirty_pairs", int64(stats.DirtyPairs))
	p.rep.Count(obs.StageProbTrain, "bucket_drift_pairs", int64(stats.BucketDrift))
	p.rep.Count(obs.StageProbTrain, "retrained_examples", int64(stats.Retrained))
	p.rep.StageEnd(obs.StageProbTrain, time.Since(start))
}

// stageScore annotates every taxonomy edge with the evidence model's
// plausibility and freezes the builder into the serving CSR view.
func (p *pipeline) stageScore() {
	AnnotatePlausibility(p.tax.Graph, p.model, p.workers, p.rep)
	p.fz = p.tax.Graph.Freeze()
}

// stageTypicality runs the Algorithm 3 DP. With a previous typicality
// engine, only the rows of nodes whose ancestor evidence changed are
// recomputed (prob.DirtySeeds + the descendant closure); clean rows are
// copied across by label.
func (p *pipeline) stageTypicality(prev *prob.Typicality, prevGraph graph.Reader) error {
	opts := prob.Options{Workers: p.workers, Reporter: p.rep}
	if prev != nil && prevGraph != nil {
		seeds := prob.DirtySeeds(prevGraph, p.fz)
		p.stats.DirtySeeds = len(seeds)
		opts.Prev = prev
		opts.Seeds = seeds
	}
	typ, err := prob.New(p.fz, opts)
	if err != nil {
		return fmt.Errorf("core: taxonomy is not a DAG: %w", err)
	}
	p.typ = typ
	return nil
}

// finish assembles the queryable Probase plus the BuildState the next
// delta build resumes from.
func (p *pipeline) finish() *Probase {
	return &Probase{
		Store:      p.res.Store,
		Graph:      p.fz,
		Senses:     p.tax.Senses,
		Extraction: p.res,
		Info: BuildInfo{
			Rounds:   p.res.Rounds,
			Taxonomy: p.tax.Stats,
			Parsed:   p.res.Parsed,
			Delta:    p.stats,
		},
		State: &BuildState{
			Checkpoint: p.res.Checkpoint,
			Taxonomy:   p.tax.State,
			NB:         p.model.NB(),
		},
		typ:   p.typ,
		model: p.model,
	}
}

// ErrNoBuildState reports a delta build attempted from a Probase that
// does not carry resumable state (graph-only snapshot, or a base built
// before the staged pipeline).
var ErrNoBuildState = errors.New("core: base has no build state; rebuild it or save with SaveFull")

// DeltaBuild extends a previously built Probase over a corpus delta.
// Each stage resumes from prev's BuildState and recomputes only the
// dirty set the delta actually touched; the result — graph bytes, sense
// inventory, every query answer — is identical to Build over the
// concatenated corpus, at a fraction of the wall time when the delta is
// small. cfg must match the base build's config (same similarity, chunk
// size, oracle and sense-evidence settings); the stages' equivalence
// guarantees hold only under the configuration that produced prev.
func DeltaBuild(prev *Probase, inputs []extraction.Input, cfg Config) (*Probase, error) {
	if prev == nil || prev.State == nil || prev.State.Checkpoint == nil ||
		prev.State.Taxonomy == nil || prev.State.NB == nil {
		return nil, ErrNoBuildState
	}
	if prev.Store == nil {
		return nil, ErrNoBuildState
	}
	p := newPipeline(cfg)
	if err := p.stageResume(prev.State.Checkpoint, inputs); err != nil {
		return nil, err
	}
	p.stageTaxonomyDelta(prev.State.Taxonomy)
	p.stageTrainDelta(prev.State.NB, prev.Store)
	p.stageScore()
	if err := p.stageTypicality(prev.typ, prev.Graph); err != nil {
		return nil, err
	}
	return p.finish(), nil
}
