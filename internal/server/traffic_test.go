package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/window"
)

func decodeTraffic(t *testing.T, rec *httptest.ResponseRecorder) benchfmt.Report {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/admin/traffic status = %d: %s", rec.Code, rec.Body.String())
	}
	if err := benchfmt.ValidateBytesAs("traffic", rec.Body.Bytes(), TrafficSchema); err != nil {
		t.Fatalf("traffic payload invalid: %v", err)
	}
	var r benchfmt.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	return r
}

func trafficExperiment(t *testing.T, r benchfmt.Report, name string) map[string]any {
	t.Helper()
	e, ok := r.Experiment(name)
	if !ok {
		t.Fatalf("no %q experiment in traffic report", name)
	}
	m, ok := e.Result.(map[string]any)
	if !ok {
		t.Fatalf("%q result is %T, want object", name, e.Result)
	}
	return m
}

func TestAdminTrafficEndpoint(t *testing.T) {
	s := newTestServer(t)

	// Generate identifiable traffic: repeated hot concept + some misses.
	for i := 0; i < 12; i++ {
		get(t, s, "/v1/instances?concept=companies&k=5")
	}
	get(t, s, "/v1/concepts?term=microsoft&k=3")
	get(t, s, "/v1/healthz")

	rec, _ := get(t, s, "/v1/admin/traffic")
	report := decodeTraffic(t, rec)

	// The envelope reuses the benchfmt fields the validator requires:
	// Sentences carries the snapshot node count, Queries the 30m request
	// count.
	if report.Options.Sentences != s.state().pb.Graph.NumNodes() {
		t.Errorf("options.sentences = %d, want node count %d",
			report.Options.Sentences, s.state().pb.Graph.NumNodes())
	}

	total := trafficExperiment(t, report, "total")
	wins, ok := total["windows"].([]any)
	if !ok || len(wins) != len(window.DefaultWindows) {
		t.Fatalf("total windows = %v, want %d entries", total["windows"], len(window.DefaultWindows))
	}
	w1 := wins[0].(map[string]any)
	if w1["window"] != "1m" {
		t.Errorf("first window = %v, want 1m", w1["window"])
	}
	if reqs := w1["requests"].(float64); reqs < 14 {
		t.Errorf("total 1m requests = %v, want >= 14", reqs)
	}

	inst := trafficExperiment(t, report, "traffic:instances")
	hot, ok := inst["hot_keys"].([]any)
	if !ok || len(hot) == 0 {
		t.Fatalf("instances hot_keys = %v, want non-empty", inst["hot_keys"])
	}
	top := hot[0].(map[string]any)
	if top["key"] != "companies" || top["count"].(float64) != 12 {
		t.Errorf("top hot key = %v, want companies x12", top)
	}

	slo := trafficExperiment(t, report, "slo")
	if slo["status"] != window.HealthOK {
		t.Errorf("slo status = %v, want ok", slo["status"])
	}
}

func TestNoStoreHeaders(t *testing.T) {
	s := newTestServer(t)
	// Health and analytics must carry no-store and an explicit content
	// type; cacheable query endpoints must NOT be marked no-store (they
	// are legitimately cacheable by intermediaries).
	for _, path := range []string{"/v1/healthz", "/v1/admin/stats", "/v1/admin/traffic"} {
		rec, _ := get(t, s, path)
		if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", path, cc)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Errorf("%s Content-Type = %q", path, ct)
		}
	}
	rec, _ := get(t, s, "/v1/instances?concept=companies&k=5")
	if cc := rec.Header().Get("Cache-Control"); cc != "" {
		t.Errorf("query endpoint Cache-Control = %q, want unset", cc)
	}
}

// TestSwapMovesPurgeCounters is the purge-instrumentation satellite:
// each Swap increments probase_cache_purges_total and records the
// evicted count, and the traffic analytics reset with it.
func TestSwapMovesPurgeCounters(t *testing.T) {
	pb := testProbase(t)
	s := New(pb, Config{})

	// Warm the cache and the traffic windows.
	for i := 0; i < 5; i++ {
		get(t, s, "/v1/instances?concept=companies&k="+strconv.Itoa(i+1))
	}
	warmed := s.cache.Len()
	if warmed == 0 {
		t.Fatal("cache not warmed")
	}
	if gaugeValue(t, scrape(t, s), "probase_cache_purges_total") != "0" {
		t.Fatal("purge counter non-zero before any swap")
	}

	if err := s.Swap(pb); err != nil {
		t.Fatal(err)
	}
	exp := scrape(t, s)
	if got := gaugeValue(t, exp, "probase_cache_purges_total"); got != "1" {
		t.Errorf("purges after swap = %s, want 1", got)
	}
	if got := gaugeValue(t, exp, "probase_cache_purged_entries"); got != strconv.Itoa(warmed) {
		t.Errorf("purged entries = %s, want %d", got, warmed)
	}

	// Traffic history belongs to the old snapshot; Swap must clear it.
	rec, _ := get(t, s, "/v1/admin/traffic")
	report := decodeTraffic(t, rec)
	inst := trafficExperiment(t, report, "traffic:instances")
	if hot, _ := inst["hot_keys"].([]any); len(hot) != 0 {
		t.Errorf("hot keys survived swap: %v", hot)
	}

	if err := s.Swap(pb); err != nil {
		t.Fatal(err)
	}
	if got := gaugeValue(t, scrape(t, s), "probase_cache_purges_total"); got != "2" {
		t.Errorf("purges after second swap = %s, want 2", got)
	}
}

// TestFailInjectDegradesHealthz is the gate-liveness mechanism CI
// relies on: a synthetic error storm must flip /v1/healthz to degraded
// and push probase_slo_burn_rate above the configured threshold.
func TestFailInjectDegradesHealthz(t *testing.T) {
	s := New(testProbase(t), Config{FailInject: 2})

	rec, health := get(t, s, "/v1/healthz")
	if rec.Code != http.StatusOK || health["status"] != window.HealthOK {
		t.Fatalf("pre-storm healthz = %d %v, want 200 ok", rec.Code, health["status"])
	}

	// Every 2nd query request 500s: a 50% error rate against the 0.1%
	// default budget is a 500x burn in every window.
	fails := 0
	for i := 0; i < 60; i++ {
		r, _ := get(t, s, "/v1/typicality?concept=companies&instance=microsoft")
		if r.Code == http.StatusInternalServerError {
			fails++
		}
	}
	if fails != 30 {
		t.Fatalf("fail-inject produced %d faults of 60, want 30", fails)
	}

	// The engine caches verdicts for 1s; wait out the TTL so healthz
	// re-evaluates against the stormy windows.
	time.Sleep(1100 * time.Millisecond)
	rec, health = get(t, s, "/v1/healthz")
	if health["status"] != window.HealthDegraded {
		t.Fatalf("healthz status after storm = %v, want degraded", health["status"])
	}
	if reasons, _ := health["reasons"].([]any); len(reasons) == 0 {
		t.Error("degraded healthz carries no reasons")
	}

	exp := scrape(t, s)
	burn, err := strconv.ParseFloat(gaugeValue(t, exp, `probase_slo_burn_rate{window="1m"}`), 64)
	if err != nil {
		t.Fatal(err)
	}
	if burn < 14.4 {
		t.Errorf("1m burn rate = %v, want above the 14.4 threshold", burn)
	}
	if got := gaugeValue(t, exp, "probase_slo_degraded"); got != "1" {
		t.Errorf("probase_slo_degraded = %s, want 1", got)
	}

	// Health and admin endpoints are exempt from injection — the
	// degraded verdict stayed observable throughout.
	if rec.Code != http.StatusOK {
		t.Errorf("healthz status code during storm = %d, want 200", rec.Code)
	}
}

// TestTrafficWindowsRollWithInjectedClock drives the server's rings
// with a fake clock: events expire out of the short window exactly at
// bucket granularity.
func TestTrafficWindowsRollWithInjectedClock(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	s := New(testProbase(t), Config{Now: func() time.Time { return now }})

	for i := 0; i < 8; i++ {
		get(t, s, "/v1/concepts?term=microsoft&k=3")
	}
	stats := s.traffic.windows.Series(epConcepts).Stats(time.Minute, 30*time.Minute)
	if stats[0].Requests != 8 {
		t.Fatalf("1m requests = %d, want 8", stats[0].Requests)
	}

	now = now.Add(2 * time.Minute)
	stats = s.traffic.windows.Series(epConcepts).Stats(time.Minute, 30*time.Minute)
	if stats[0].Requests != 0 {
		t.Errorf("1m requests after 2m idle = %d, want 0", stats[0].Requests)
	}
	if stats[1].Requests != 8 {
		t.Errorf("30m requests after 2m idle = %d, want 8", stats[1].Requests)
	}
}

func TestAdminTrafficRejectsPost(t *testing.T) {
	s := newTestServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/admin/traffic", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", rec.Code)
	}
}
