// Package kb implements Γ, the knowledge store of isA pairs accumulated by
// the iterative extraction framework (Section 2.3, Table 3 of the paper).
// It keeps the pair counts n(x,y), the conditional statistics p(x) and
// p(y|x) used by super- and sub-concept detection, per-super co-occurrence
// counts used to resolve compound sub-concepts, and the per-pair evidence
// feature vectors consumed by the plausibility model.
package kb

import (
	"fmt"
	"sort"
	"sync"
)

// Pair is one isA claim: Y isA X, with X the super-concept.
type Pair struct {
	X, Y string
}

// Evidence records the extraction features of one sentence supporting an
// isA pair, per Section 4.1 (the feature set F_i of Eq. 2).
type Evidence struct {
	Pattern   int     // Hearst pattern ID used
	PageScore float64 // PageRank-like score of the source page, in [0,1]
	ListLen   int     // number of sub-concepts extracted from the sentence
	Pos       int     // 1-based position of y relative to the pattern keywords
	Negative  bool    // negative evidence (e.g. a part-of claim) lowers plausibility
	// Seq is the canonical corpus-order key of the sentence occurrence
	// that produced this record (derived from the global sentence index
	// and the position within the sentence). Evidence lists are kept
	// sorted by Seq, which makes the per-pair list — and everything
	// derived from it, like the noisy-or product and the cap's keep set —
	// independent of the order rounds happened to discover the records
	// in. That invariance is what lets an incremental delta build land on
	// exactly the evidence lists a from-scratch build over the
	// concatenated corpus produces. Zero means "unordered": such records
	// append in arrival order, preserving the legacy behaviour.
	Seq int64
}

// Store is Γ. It is safe for concurrent readers with a single writer, and
// fully safe under the embedded mutex for mixed use.
type Store struct {
	mu         sync.RWMutex
	bySuper    map[string]map[string]int64
	bySub      map[string]map[string]int64
	superTotal map[string]int64
	subTotal   map[string]int64
	total      int64
	npairs     int64
	co         map[string]int64
	evidence   map[Pair][]Evidence
	maxEv      int
}

// NewStore returns an empty Γ. maxEvidencePerPair bounds the evidence kept
// per pair (0 means keep everything); the noisy-or saturates quickly, so a
// small cap loses nothing.
func NewStore(maxEvidencePerPair int) *Store {
	return &Store{
		bySuper:    make(map[string]map[string]int64),
		bySub:      make(map[string]map[string]int64),
		superTotal: make(map[string]int64),
		subTotal:   make(map[string]int64),
		co:         make(map[string]int64),
		evidence:   make(map[Pair][]Evidence),
		maxEv:      maxEvidencePerPair,
	}
}

// SetMaxEvidence sets the per-pair evidence cap. Stores deserialised by
// Load come back with the cap unset (0 = unlimited); a resumed build must
// restore the configured cap before new evidence arrives so the kept set
// matches a from-scratch run.
func (s *Store) SetMaxEvidence(n int) {
	s.mu.Lock()
	s.maxEv = n
	s.mu.Unlock()
}

// Add records n discoveries of the pair (x, y).
func (s *Store) Add(x, y string, n int64) {
	if n <= 0 || x == "" || y == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ys := s.bySuper[x]
	if ys == nil {
		ys = make(map[string]int64)
		s.bySuper[x] = ys
	}
	if ys[y] == 0 {
		s.npairs++
	}
	ys[y] += n
	xs := s.bySub[y]
	if xs == nil {
		xs = make(map[string]int64)
		s.bySub[y] = xs
	}
	xs[x] += n
	s.superTotal[x] += n
	s.subTotal[y] += n
	s.total += n
}

// SubMass returns the total discovery mass of pairs with y as the
// sub-concept, across all super-concepts.
func (s *Store) SubMass(y string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.subTotal[y]
}

// PSubGlobal returns the corpus-wide frequency of y as a sub-concept —
// the Downey-style term-association signal (Section 2.1) used when a
// candidate has no per-concept statistics yet.
func (s *Store) PSubGlobal(y string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.total == 0 {
		return 0
	}
	return float64(s.subTotal[y]) / float64(s.total)
}

// AddEvidence records one evidence record for the pair (x, y), keeping
// the per-pair list sorted by Evidence.Seq (stable for equal keys: new
// records land after existing ones, so zero-Seq legacy callers see pure
// append order). The cap keeps the lowest-Seq records: a record that
// would land past the cap is dropped, and a record that lands inside it
// evicts the current highest-Seq entry — so the kept set is the
// lowest-Seq maxEv records of everything ever offered, independent of
// arrival order.
func (s *Store) AddEvidence(x, y string, ev Evidence) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := Pair{X: x, Y: y}
	evs := s.evidence[p]
	i := sort.Search(len(evs), func(i int) bool { return evs[i].Seq > ev.Seq })
	if s.maxEv > 0 && len(evs) >= s.maxEv {
		if i >= s.maxEv {
			return
		}
		evs = evs[:s.maxEv-1]
	}
	evs = append(evs, Evidence{})
	copy(evs[i+1:], evs[i:])
	evs[i] = ev
	s.evidence[p] = evs
}

// Evidence returns a copy of the evidence recorded for (x, y).
func (s *Store) Evidence(x, y string) []Evidence {
	s.mu.RLock()
	defer s.mu.RUnlock()
	evs := s.evidence[Pair{X: x, Y: y}]
	out := make([]Evidence, len(evs))
	copy(out, evs)
	return out
}

func coKey(x, a, b string) string {
	if a > b {
		a, b = b, a
	}
	return x + "\x1f" + a + "\x1f" + b
}

// AddCo records that sub-concepts a and b were both accepted under super-
// concept x in the same sentence. The count is symmetric in a and b.
func (s *Store) AddCo(x, a, b string, n int64) {
	if n <= 0 || a == b {
		return
	}
	s.mu.Lock()
	s.co[coKey(x, a, b)] += n
	s.mu.Unlock()
}

// CoCount returns the number of sentences in which a and b were both
// accepted as sub-concepts of x.
func (s *Store) CoCount(x, a, b string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.co[coKey(x, a, b)]
}

// Count returns n(x, y).
func (s *Store) Count(x, y string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bySuper[x][y]
}

// SuperTotal returns the total discovery mass of pairs with x as the
// super-concept.
func (s *Store) SuperTotal(x string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.superTotal[x]
}

// Total returns the total discovery mass over all pairs.
func (s *Store) Total() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

// NumPairs returns the number of distinct isA pairs in Γ.
func (s *Store) NumPairs() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.npairs
}

// NumSupers returns the number of distinct super-concepts in Γ.
func (s *Store) NumSupers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bySuper)
}

// PX returns p(x): the fraction of the total pair mass whose super-concept
// is x (Section 2.3.2). Zero when Γ is empty or x unseen.
func (s *Store) PX(x string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.total == 0 {
		return 0
	}
	return float64(s.superTotal[x]) / float64(s.total)
}

// PYgivenX returns p(y|x): the fraction of x's pair mass carried by y.
// Zero when (x, y) is not in Γ; callers substitute their ε.
func (s *Store) PYgivenX(y, x string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.superTotal[x]
	if t == 0 {
		return 0
	}
	return float64(s.bySuper[x][y]) / float64(t)
}

// PYgivenCX returns p(y | c, x): the likelihood that y appears as a valid
// sub-concept in a sentence whose super-concept is x and where c is another
// valid sub-concept (Section 2.3.3). Zero when unseen.
func (s *Store) PYgivenCX(y, c, x string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.bySuper[x][c]
	if n == 0 {
		return 0
	}
	return float64(s.co[coKey(x, c, y)]) / float64(n)
}

// HasPair reports whether (x, y) has a count-table entry — exactly the
// domain ForEachPair enumerates. Evidence-only pairs (negative part-whole
// records never sighted as isA) fall outside it.
func (s *Store) HasPair(x, y string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.bySuper[x][y]
	return ok
}

// HasSuper reports whether x appears as a super-concept in Γ.
func (s *Store) HasSuper(x string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.superTotal[x] > 0
}

// SubsOf returns the sub-concepts of x sorted by descending count, then
// lexicographically for determinism.
func (s *Store) SubsOf(x string) []string {
	s.mu.RLock()
	ys := make([]string, 0, len(s.bySuper[x]))
	for y := range s.bySuper[x] {
		ys = append(ys, y)
	}
	counts := make(map[string]int64, len(ys))
	for _, y := range ys {
		counts[y] = s.bySuper[x][y]
	}
	s.mu.RUnlock()
	sort.Slice(ys, func(i, j int) bool {
		if counts[ys[i]] != counts[ys[j]] {
			return counts[ys[i]] > counts[ys[j]]
		}
		return ys[i] < ys[j]
	})
	return ys
}

// SupersOf returns the super-concepts of y sorted by descending count,
// then lexicographically.
func (s *Store) SupersOf(y string) []string {
	s.mu.RLock()
	xs := make([]string, 0, len(s.bySub[y]))
	for x := range s.bySub[y] {
		xs = append(xs, x)
	}
	counts := make(map[string]int64, len(xs))
	for _, x := range xs {
		counts[x] = s.bySub[y][x]
	}
	s.mu.RUnlock()
	sort.Slice(xs, func(i, j int) bool {
		if counts[xs[i]] != counts[xs[j]] {
			return counts[xs[i]] > counts[xs[j]]
		}
		return xs[i] < xs[j]
	})
	return xs
}

// ForEachPair calls fn for every pair in Γ in deterministic order
// (super label, then sub label).
func (s *Store) ForEachPair(fn func(x, y string, n int64)) {
	s.mu.RLock()
	xs := make([]string, 0, len(s.bySuper))
	for x := range s.bySuper {
		xs = append(xs, x)
	}
	sort.Strings(xs)
	type row struct {
		x, y string
		n    int64
	}
	var rows []row
	for _, x := range xs {
		ys := make([]string, 0, len(s.bySuper[x]))
		for y := range s.bySuper[x] {
			ys = append(ys, y)
		}
		sort.Strings(ys)
		for _, y := range ys {
			rows = append(rows, row{x, y, s.bySuper[x][y]})
		}
	}
	s.mu.RUnlock()
	for _, r := range rows {
		fn(r.x, r.y, r.n)
	}
}

// Merge folds other into s (the reduce step of a parallel extraction
// round). Evidence and co-occurrence counts are merged too.
func (s *Store) Merge(other *Store) {
	other.mu.RLock()
	defer other.mu.RUnlock()
	for x, ys := range other.bySuper {
		for y, n := range ys {
			s.Add(x, y, n)
		}
	}
	s.mu.Lock()
	for k, n := range other.co {
		s.co[k] += n
	}
	s.mu.Unlock()
	for p, evs := range other.evidence {
		for _, ev := range evs {
			s.AddEvidence(p.X, p.Y, ev)
		}
	}
}

// Clone returns a deep copy of Γ — counts, totals, co-occurrence,
// evidence and the evidence cap. A delta build clones the base store
// before resuming extraction into the copy, so the base view stays
// intact for evidence diffing (and for the still-serving base Probase).
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := NewStore(s.maxEv)
	for x, ys := range s.bySuper {
		m := make(map[string]int64, len(ys))
		for y, n := range ys {
			m[y] = n
		}
		c.bySuper[x] = m
	}
	for y, xs := range s.bySub {
		m := make(map[string]int64, len(xs))
		for x, n := range xs {
			m[x] = n
		}
		c.bySub[y] = m
	}
	for x, n := range s.superTotal {
		c.superTotal[x] = n
	}
	for y, n := range s.subTotal {
		c.subTotal[y] = n
	}
	c.total = s.total
	c.npairs = s.npairs
	for k, n := range s.co {
		c.co[k] = n
	}
	for p, evs := range s.evidence {
		c.evidence[p] = append([]Evidence(nil), evs...)
	}
	return c
}

// Stats is a summary of Γ used by per-iteration reporting (Figure 10).
type Stats struct {
	Pairs    int64 // distinct isA pairs
	Supers   int   // distinct super-concepts
	Mass     int64 // total discovery count
	Evidence int   // pairs with recorded evidence
}

// Stats returns the current summary.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Pairs:    s.npairs,
		Supers:   len(s.bySuper),
		Mass:     s.total,
		Evidence: len(s.evidence),
	}
}

// String implements fmt.Stringer with a compact summary.
func (s *Store) String() string {
	st := s.Stats()
	return fmt.Sprintf("kb.Store{pairs=%d supers=%d mass=%d}", st.Pairs, st.Supers, st.Mass)
}
