// Package graph is the embedded graph store that hosts the final Probase
// taxonomy — the laptop-scale stand-in for the Trinity graph engine the
// paper deploys ([29, 30]). Nodes are string-interned labels; edges carry
// the discovery count n(x, y) and the plausibility P(x, y). The store
// supports the traversals the probabilistic layer needs (parents,
// children, descendant closures, topological levels for Algorithm 3) and
// a checksummed binary snapshot format.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies an interned node.
type NodeID uint32

// NoNode is returned by Lookup for unknown labels.
const NoNode = NodeID(^uint32(0))

// Kind distinguishes concept nodes from instance (leaf) nodes. Per
// Section 3.1: nodes without out-edges are instances, others are concepts.
type Kind uint8

const (
	// KindConcept marks a node with out-edges.
	KindConcept Kind = iota
	// KindInstance marks a leaf node.
	KindInstance
)

// Edge is a directed isA edge from a super-concept to a sub-node.
type Edge struct {
	To           NodeID
	Count        int64   // n(x, y)
	Plausibility float64 // P(x, y), 0 when not yet computed
}

// Store is an in-memory directed graph with interned labels. The zero
// value is not usable; call NewStore.
type Store struct {
	labels  []string
	byLabel map[string]NodeID
	out     [][]Edge
	in      [][]Edge
}

// NewStore returns an empty graph store.
func NewStore() *Store {
	return &Store{byLabel: make(map[string]NodeID)}
}

// Intern returns the node for the label, creating it if needed.
func (s *Store) Intern(label string) NodeID {
	if id, ok := s.byLabel[label]; ok {
		return id
	}
	id := NodeID(len(s.labels))
	s.labels = append(s.labels, label)
	s.byLabel[label] = id
	s.out = append(s.out, nil)
	s.in = append(s.in, nil)
	return id
}

// Clone returns a deep copy of the store.
func (s *Store) Clone() *Store {
	c := NewStore()
	c.labels = append([]string(nil), s.labels...)
	for l, id := range s.byLabel {
		c.byLabel[l] = id
	}
	c.out = make([][]Edge, len(s.out))
	c.in = make([][]Edge, len(s.in))
	for i := range s.out {
		c.out[i] = append([]Edge(nil), s.out[i]...)
		c.in[i] = append([]Edge(nil), s.in[i]...)
	}
	return c
}

// Lookup returns the node for the label, or NoNode.
func (s *Store) Lookup(label string) NodeID {
	if id, ok := s.byLabel[label]; ok {
		return id
	}
	return NoNode
}

// Label returns the label of a node.
func (s *Store) Label(id NodeID) string { return s.labels[id] }

// NumNodes returns the node count.
func (s *Store) NumNodes() int { return len(s.labels) }

// NumEdges returns the edge count.
func (s *Store) NumEdges() int {
	n := 0
	for _, es := range s.out {
		n += len(es)
	}
	return n
}

// AddEdge inserts or accumulates the edge (from -> to). Counts add up;
// a non-zero plausibility overwrites.
func (s *Store) AddEdge(from, to NodeID, count int64, plausibility float64) {
	for i := range s.out[from] {
		if s.out[from][i].To == to {
			s.out[from][i].Count += count
			if plausibility != 0 {
				s.out[from][i].Plausibility = plausibility
			}
			for j := range s.in[to] {
				if s.in[to][j].To == from {
					s.in[to][j].Count += count
					if plausibility != 0 {
						s.in[to][j].Plausibility = plausibility
					}
					return
				}
			}
			return
		}
	}
	s.out[from] = append(s.out[from], Edge{To: to, Count: count, Plausibility: plausibility})
	s.in[to] = append(s.in[to], Edge{To: from, Count: count, Plausibility: plausibility})
}

// EdgeBetween returns the edge from -> to.
func (s *Store) EdgeBetween(from, to NodeID) (Edge, bool) {
	for _, e := range s.out[from] {
		if e.To == to {
			return e, true
		}
	}
	return Edge{}, false
}

// Children returns the out-edges of a node.
func (s *Store) Children(id NodeID) []Edge { return s.out[id] }

// Parents returns the in-edges of a node (Edge.To is the parent).
func (s *Store) Parents(id NodeID) []Edge { return s.in[id] }

// Kind classifies the node: out-edges make a concept, none an instance.
func (s *Store) Kind(id NodeID) Kind {
	if len(s.out[id]) > 0 {
		return KindConcept
	}
	return KindInstance
}

// Roots returns all nodes without parents, sorted by label.
func (s *Store) Roots() []NodeID {
	var roots []NodeID
	for id := range s.labels {
		if len(s.in[id]) == 0 {
			roots = append(roots, NodeID(id))
		}
	}
	s.sortByLabel(roots)
	return roots
}

// Concepts returns all concept nodes, sorted by label.
func (s *Store) Concepts() []NodeID {
	var out []NodeID
	for id := range s.labels {
		if len(s.out[id]) > 0 {
			out = append(out, NodeID(id))
		}
	}
	s.sortByLabel(out)
	return out
}

// Instances returns all instance (leaf) nodes, sorted by label.
func (s *Store) Instances() []NodeID {
	var out []NodeID
	for id := range s.labels {
		if len(s.out[id]) == 0 {
			out = append(out, NodeID(id))
		}
	}
	s.sortByLabel(out)
	return out
}

func (s *Store) sortByLabel(ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return s.labels[ids[i]] < s.labels[ids[j]] })
}

// Descendants returns the descendant closure of id (excluding id),
// deduplicated, in BFS order.
func (s *Store) Descendants(id NodeID) []NodeID {
	seen := map[NodeID]bool{id: true}
	var out []NodeID
	queue := []NodeID{id}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range s.out[n] {
			if !seen[e.To] {
				seen[e.To] = true
				out = append(out, e.To)
				queue = append(queue, e.To)
			}
		}
	}
	return out
}

// Ancestors returns the ancestor closure of id (excluding id) in BFS
// order.
func (s *Store) Ancestors(id NodeID) []NodeID {
	seen := map[NodeID]bool{id: true}
	var out []NodeID
	queue := []NodeID{id}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range s.in[n] {
			if !seen[e.To] {
				seen[e.To] = true
				out = append(out, e.To)
				queue = append(queue, e.To)
			}
		}
	}
	return out
}

// HasPath reports whether to is reachable from from along out-edges.
func (s *Store) HasPath(from, to NodeID) bool {
	if from == to {
		return true
	}
	seen := map[NodeID]bool{from: true}
	queue := []NodeID{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range s.out[n] {
			if e.To == to {
				return true
			}
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return false
}

// TopoLevels partitions the nodes into the levels of Algorithm 3:
// L1 holds nodes with no parents; L(k) holds nodes all of whose parents
// lie in L1..L(k-1). An error is returned when the graph has a cycle.
func (s *Store) TopoLevels() ([][]NodeID, error) {
	remaining := make([]int, len(s.labels))
	placed := 0
	for id := range s.labels {
		remaining[id] = len(s.in[id])
	}
	var levels [][]NodeID
	var current []NodeID
	for id := range s.labels {
		if remaining[id] == 0 {
			current = append(current, NodeID(id))
		}
	}
	for len(current) > 0 {
		s.sortByLabel(current)
		levels = append(levels, current)
		placed += len(current)
		var next []NodeID
		for _, n := range current {
			for _, e := range s.out[n] {
				remaining[e.To]--
				if remaining[e.To] == 0 {
					next = append(next, e.To)
				}
			}
		}
		current = next
	}
	if placed != len(s.labels) {
		return nil, fmt.Errorf("graph: cycle detected; %d of %d nodes unplaced", len(s.labels)-placed, len(s.labels))
	}
	return levels, nil
}

// Level returns, for every node, the length of the longest path from the
// node down to a leaf — the paper's definition of a concept's level
// (Table 4): instances have level 0, their direct concepts level >= 1.
func (s *Store) Level() ([]int, error) {
	levels, err := s.TopoLevels()
	if err != nil {
		return nil, err
	}
	depth := make([]int, len(s.labels))
	// Process in reverse topological order: children before parents.
	for i := len(levels) - 1; i >= 0; i-- {
		for _, n := range levels[i] {
			best := 0
			for _, e := range s.out[n] {
				if d := depth[e.To] + 1; d > best {
					best = d
				}
			}
			depth[n] = best
		}
	}
	return depth, nil
}
