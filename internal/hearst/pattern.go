// Package hearst implements the six Hearst patterns of Table 2 in the
// Probase paper and the SyntacticExtraction procedure of Section 2.3.1:
// from a sentence it produces the candidate super-concepts Xs and the
// candidate sub-concepts Ys, deliberately keeping every ambiguous reading
// (wrong-attachment super-concepts from "other than" clauses, compound
// sub-concepts containing "and"/"or", and over-long candidate lists) so
// that the semantic layer in internal/extraction can resolve them.
package hearst

import (
	"strings"

	"repro/internal/nlp"
)

// PatternID identifies one of the six Hearst patterns (Table 2).
type PatternID int

// The six Hearst patterns. NP stands for noun phrase.
const (
	PatternNone       PatternID = 0
	PatternSuchAs     PatternID = 1 // NP such as {NP,}* {(or|and)} NP
	PatternSuchNPAs   PatternID = 2 // such NP as {NP,}* {(or|and)} NP
	PatternIncluding  PatternID = 3 // NP{,} including {NP,}* {(or|and)} NP
	PatternAndOther   PatternID = 4 // NP{, NP}*{,} and other NP
	PatternOrOther    PatternID = 5 // NP{, NP}*{,} or other NP
	PatternEspecially PatternID = 6 // NP{,} especially {NP,}* {(or|and)} NP
)

// String returns the pattern's keyword form.
func (p PatternID) String() string {
	switch p {
	case PatternSuchAs:
		return "such as"
	case PatternSuchNPAs:
		return "such NP as"
	case PatternIncluding:
		return "including"
	case PatternAndOther:
		return "and other"
	case PatternOrOther:
		return "or other"
	case PatternEspecially:
		return "especially"
	default:
		return "none"
	}
}

// Segment is one candidate sub-concept position in Ys. When the underlying
// list element contains an embedded "and"/"or", the element has two
// readings: the whole phrase as a single sub-concept (Whole), or the split
// parts as multiple sub-concepts (Parts). Parts is nil for unambiguous
// elements.
type Segment struct {
	Whole string
	Parts []string
}

// Ambiguous reports whether the segment has more than one reading.
func (s Segment) Ambiguous() bool { return len(s.Parts) > 0 }

// Match is the result of SyntacticExtraction on one sentence: the candidate
// super-concepts Xs (each a plural noun phrase, possibly including the
// wrong attachment from an "other than" clause) and the candidate
// sub-concept segments Ys ordered by closeness to the pattern keywords
// (position 1 first, per Observations 1 and 2 of Section 2.3.3).
type Match struct {
	Pattern  PatternID
	Supers   []string
	Segments []Segment
	Raw      string
}

// cutAtClauseEnd truncates at the first sentence terminator, except a
// period that ends a single-letter abbreviation ("I. M. Pei").
func cutAtClauseEnd(s string) string {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ';', ':', '!', '?':
			return s[:i]
		case '.':
			if i >= 1 && isUpperByte(s[i-1]) && (i == 1 || s[i-2] == ' ') {
				continue // abbreviation initial
			}
			return s[:i]
		}
	}
	return s
}

func isUpperByte(b byte) bool { return b >= 'A' && b <= 'Z' }

// Parse matches a sentence against the six Hearst patterns and, on
// success, performs syntactic extraction. It returns ok=false when the
// sentence matches no pattern or yields no usable candidates.
func Parse(sentence string) (Match, bool) {
	lower := strings.ToLower(sentence)

	if i := strings.Index(lower, " such as "); i >= 0 {
		return parseForward(sentence, lower, PatternSuchAs, i, i+len(" such as "))
	}
	if m, ok := parseSuchNPAs(sentence, lower); ok {
		return m, true
	}
	if i := strings.Index(lower, " including "); i >= 0 {
		return parseForward(sentence, lower, PatternIncluding, i, i+len(" including "))
	}
	if i := strings.Index(lower, " especially "); i >= 0 {
		return parseForward(sentence, lower, PatternEspecially, i, i+len(" especially "))
	}
	if i := strings.Index(lower, " and other "); i >= 0 {
		return parseBackward(sentence, lower, PatternAndOther, i, i+len(" and other "))
	}
	if i := strings.Index(lower, " or other "); i >= 0 {
		return parseBackward(sentence, lower, PatternOrOther, i, i+len(" or other "))
	}
	return Match{}, false
}

// parseSuchNPAs handles pattern 2: "such NP as Y1, Y2 ...". The NP sits
// between the words "such" and "as".
func parseSuchNPAs(sentence, lower string) (Match, bool) {
	i := strings.Index(lower, "such ")
	if i < 0 || (i > 0 && lower[i-1] != ' ') {
		if i != 0 {
			return Match{}, false
		}
	}
	rest := lower[i+len("such "):]
	j := strings.Index(rest, " as ")
	if j <= 0 {
		return Match{}, false
	}
	np := nlp.CollapseSpaces(sentence[i+len("such ") : i+len("such ")+j])
	if np == "" || nlp.ContainsDelimiterWord(np) || !nlp.IsPluralPhrase(np) {
		return Match{}, false
	}
	subStart := i + len("such ") + j + len(" as ")
	segs := forwardSegments(sentence[subStart:])
	if len(segs) == 0 {
		return Match{}, false
	}
	return Match{
		Pattern:  PatternSuchNPAs,
		Supers:   []string{np},
		Segments: segs,
		Raw:      sentence,
	}, true
}

// parseForward handles patterns whose keyword precedes the sub-concept
// list (1, 3, 6). kwStart/kwEnd are byte offsets of the keyword in the
// sentence; text after kwEnd is the candidate list, text before kwStart
// holds the super-concept candidates.
func parseForward(sentence, lower string, p PatternID, kwStart, kwEnd int) (Match, bool) {
	left := strings.TrimRight(sentence[:kwStart], " ,")
	supers := superCandidates(left)
	if len(supers) == 0 {
		return Match{}, false
	}
	segs := forwardSegments(sentence[kwEnd:])
	if len(segs) == 0 {
		return Match{}, false
	}
	return Match{Pattern: p, Supers: supers, Segments: segs, Raw: sentence}, true
}

// parseBackward handles patterns 4 and 5, where the sub-concept list
// precedes "and other NP" / "or other NP".
func parseBackward(sentence, lower string, p PatternID, kwStart, kwEnd int) (Match, bool) {
	super := nlp.LeadingNounPhrase(cutAtClauseEnd(sentence[kwEnd:]))
	if super == "" || !nlp.IsPluralPhrase(super) {
		return Match{}, false
	}
	elems := nlp.SplitList(sentence[:kwStart])
	if len(elems) == 0 {
		return Match{}, false
	}
	// The first element may carry a prose prefix ("representatives in
	// North America"); keep only its trailing noun phrase — except that a
	// compound name would be cut at its "and" ("Proctor and Gamble" ->
	// "Gamble"), so delimiter-bearing elements keep both readings as an
	// ambiguous segment.
	var first Segment
	haveFirst := false
	if chunks := splitOnDelimiter(elems[0]); len(chunks) > 1 {
		if np := nlp.TrailingNounPhrase(chunks[0]); np != "" {
			parts := append([]string{np}, chunks[1:]...)
			first = Segment{Whole: strings.Join(parts, " and "), Parts: parts}
			haveFirst = true
		} else {
			// No leading NP: fall back to the trailing NP of the whole
			// element ("other than X and Europe" -> "Europe").
			if np := nlp.TrailingNounPhrase(elems[0]); np != "" {
				first = makeSegment(np)
				haveFirst = true
			}
		}
	} else if np := nlp.TrailingNounPhrase(elems[0]); np != "" {
		first = makeSegment(np)
		haveFirst = true
	}
	elems = elems[1:]
	// Position 1 is closest to the keyword, i.e. the *last* listed item.
	var segs []Segment
	for i := len(elems) - 1; i >= 0; i-- {
		segs = append(segs, makeSegment(elems[i]))
	}
	if haveFirst {
		segs = append(segs, first)
	}
	if len(segs) == 0 {
		return Match{}, false
	}
	return Match{Pattern: p, Supers: []string{super}, Segments: segs, Raw: sentence}, true
}

// superCandidates extracts the candidate super-concepts Xs from the text
// preceding a forward pattern keyword. Per Section 2.3.1 every candidate
// must be a plural noun phrase; an "other than" clause contributes both the
// NP before it and the NP after it ("animals other than dogs such as cats"
// yields {animals, dogs}).
func superCandidates(left string) []string {
	var out []string
	add := func(np string) {
		np = nlp.CollapseSpaces(np)
		if np == "" || !nlp.IsPluralPhrase(np) {
			return
		}
		for _, have := range out {
			if strings.EqualFold(have, np) {
				return
			}
		}
		out = append(out, np)
	}
	lowerLeft := strings.ToLower(left)
	if i := strings.Index(lowerLeft, " other than "); i >= 0 {
		add(nlp.TrailingNounPhrase(left[:i]))
		add(nlp.TrailingNounPhrase(left)) // NP right before the keyword (the decoy)
	} else {
		add(nlp.TrailingNounPhrase(left))
	}
	return out
}

// forwardSegments builds the position-ordered candidate segments for
// patterns whose list follows the keyword. The final comma element is
// split on "and"/"or" per Section 2.3.1, producing the ambiguous readings
// that Example 2(3) requires (Y = {IBM, Nokia, Proctor, Gamble,
// Proctor and Gamble}).
func forwardSegments(after string) []Segment {
	elems := nlp.SplitList(cutAtClauseEnd(after))
	var segs []Segment
	for i, e := range elems {
		e = strings.TrimSpace(e)
		le := strings.ToLower(e)
		// A trailing "A and B" / "A or B" that arrived as one comma element
		// (no Oxford comma) represents *two* list items unless it is a
		// compound name: split the leading "and"/"or" list terminator.
		if strings.HasPrefix(le, "and ") {
			e = strings.TrimSpace(e[4:])
		} else if strings.HasPrefix(le, "or ") {
			e = strings.TrimSpace(e[3:])
		}
		if i == len(elems)-1 {
			// The final element may carry trailing prose the commas could
			// not separate ("cats exist in many regions"); cut it at the
			// first verb boundary, which names like "Gone with the Wind"
			// never contain.
			e = nlp.TrimTrailingClause(e)
		}
		if e == "" {
			continue
		}
		segs = append(segs, makeSegment(e))
	}
	return segs
}

// makeSegment wraps a list element, recording the split reading when the
// element embeds a bare "and"/"or".
func makeSegment(e string) Segment {
	e = nlp.CollapseSpaces(e)
	seg := Segment{Whole: e}
	if parts := splitOnDelimiter(e); len(parts) > 1 {
		seg.Parts = parts
	}
	return seg
}

// splitOnDelimiter splits a phrase on standalone "and"/"or" words. It
// returns nil when the phrase has no embedded delimiter.
func splitOnDelimiter(e string) []string {
	fields := strings.Fields(e)
	var parts []string
	cur := make([]string, 0, len(fields))
	for _, f := range fields {
		lf := strings.ToLower(f)
		if lf == "and" || lf == "or" {
			if len(cur) > 0 {
				parts = append(parts, strings.Join(cur, " "))
				cur = cur[:0]
			}
			continue
		}
		cur = append(cur, f)
	}
	if len(cur) > 0 {
		parts = append(parts, strings.Join(cur, " "))
	}
	if len(parts) <= 1 {
		return nil
	}
	return parts
}
