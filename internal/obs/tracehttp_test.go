package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const validTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

func TestParseTraceparent(t *testing.T) {
	sc, err := ParseTraceparent(validTraceparent)
	if err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	if got := sc.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace ID = %s", got)
	}
	if got := sc.SpanID.String(); got != "00f067aa0ba902b7" {
		t.Errorf("span ID = %s", got)
	}
	if sc.Flags != FlagSampled {
		t.Errorf("flags = %02x", sc.Flags)
	}
	if rt := sc.Traceparent(); rt != validTraceparent {
		t.Errorf("round trip = %q", rt)
	}

	// A future version may carry extra fields; version 00 may not.
	if _, err := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); err != nil {
		t.Error("future version with extra field rejected")
	}

	malformed := []string{
		"",
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // v00 extra field
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // forbidden version
		"0x-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // non-hex version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",     // short trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902-01",     // short span ID
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",   // non-hex flags
		"00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // non-hex trace ID
	}
	for _, in := range malformed {
		if _, err := ParseTraceparent(in); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", in)
		}
	}
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

func TestMiddlewarePassThroughWhenTracingDisabled(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	h := Middleware(okHandler(), MiddlewareConfig{Logger: logger}) // no Tracer

	rec := mwRequest(t, h, map[string]string{TraceparentHeader: validTraceparent})
	if got := rec.Header().Get(TraceparentHeader); got != validTraceparent {
		t.Errorf("disabled tracing must pass the caller's traceparent through; got %q", got)
	}
	if rec.Code != http.StatusOK {
		t.Errorf("status = %d", rec.Code)
	}
	var line map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(logBuf.String(), "\n", 2)[0]), &line); err != nil {
		t.Fatal(err)
	}
	if line["trace_id"] != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("access log trace_id = %v, want the caller's", line["trace_id"])
	}
}

func TestMiddlewareMalformedTraceparentIgnored(t *testing.T) {
	// Malformed headers must neither 500 nor echo garbage, with tracing
	// both off and on.
	for name, tracer := range map[string]*Tracer{
		"disabled": nil,
		"enabled":  NewTracer(TracerConfig{SampleRate: 1, BufferSize: 4, Seed: 5}),
	} {
		h := Middleware(okHandler(), MiddlewareConfig{Logger: quietLogger(), Tracer: tracer})
		rec := mwRequest(t, h, map[string]string{TraceparentHeader: "00-bogus"})
		if rec.Code != http.StatusOK {
			t.Errorf("%s: malformed traceparent changed status to %d", name, rec.Code)
		}
		if got := rec.Header().Get(TraceparentHeader); strings.Contains(got, "bogus") {
			t.Errorf("%s: malformed traceparent echoed: %q", name, got)
		}
		if tracer != nil {
			// A fresh trace must have been started instead.
			traces := tracer.Traces()
			if len(traces) != 1 || traces[0].RemoteParent != "" {
				t.Errorf("%s: want one fresh local trace, got %+v", name, traces)
			}
		}
	}
}

func TestMiddlewareTracesRequest(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	tracer := NewTracer(TracerConfig{SampleRate: 1, BufferSize: 4, Seed: 6})
	var inCtx string
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inCtx = TraceIDFromContext(r.Context())
		_, sp := StartSpan(r.Context(), "cache.lookup")
		sp.End()
		w.WriteHeader(http.StatusOK)
	})
	h := Middleware(inner, MiddlewareConfig{Logger: logger, Tracer: tracer})

	rec := mwRequest(t, h, map[string]string{TraceparentHeader: validTraceparent})

	// The trace continues the caller's ID and the response carries our
	// span, not the caller's.
	if inCtx != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("handler saw trace ID %q", inCtx)
	}
	out, err := ParseTraceparent(rec.Header().Get(TraceparentHeader))
	if err != nil {
		t.Fatalf("response traceparent invalid: %v", err)
	}
	if out.TraceID.String() != inCtx {
		t.Errorf("response trace ID %s != request trace %s", out.TraceID, inCtx)
	}
	if out.SpanID.String() == "00f067aa0ba902b7" {
		t.Error("response span ID must be the server span, not the caller's")
	}

	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("ring has %d traces", len(traces))
	}
	td := traces[0]
	if td.RemoteParent != "00f067aa0ba902b7" {
		t.Errorf("remote parent = %q", td.RemoteParent)
	}
	if len(td.Spans) != 2 {
		t.Fatalf("want root + child span, got %d", len(td.Spans))
	}
	if td.Spans[0].Attrs["http.status"] != "200" {
		t.Errorf("root attrs = %v", td.Spans[0].Attrs)
	}

	var line map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(logBuf.String(), "\n", 2)[0]), &line); err != nil {
		t.Fatal(err)
	}
	if line["trace_id"] != inCtx || line["span_id"] == "" {
		t.Errorf("access log trace fields = %v / %v", line["trace_id"], line["span_id"])
	}
}

func TestMiddlewareMarksServerErrors(t *testing.T) {
	tracer := NewTracer(TracerConfig{SampleRate: 0, BufferSize: 4, Seed: 8})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	})
	h := Middleware(inner, MiddlewareConfig{Logger: quietLogger(), Tracer: tracer})
	mwRequest(t, h, nil)

	// Head sampling is off; only the errored tail rule can keep this.
	traces := tracer.Traces()
	if len(traces) != 1 || !traces[0].Errored {
		t.Fatalf("5xx trace not tail-kept: %+v", traces)
	}
	if traces[0].Spans[0].Error != http.StatusText(http.StatusBadGateway) {
		t.Errorf("root error = %q", traces[0].Spans[0].Error)
	}
}

// TestGracefulShutdownFlushesTraces pins the drain guarantee: a trace
// of a request in flight when Shutdown is called is in the ring buffer
// by the time Shutdown returns, because the root span ends
// synchronously inside the middleware.
func TestGracefulShutdownFlushesTraces(t *testing.T) {
	tracer := NewTracer(TracerConfig{SampleRate: 1, BufferSize: 4, Seed: 9})
	entered := make(chan struct{})
	release := make(chan struct{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(Middleware(inner, MiddlewareConfig{Logger: quietLogger(), Tracer: tracer}))
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/v1/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()

	<-entered
	// Request is in flight: shut down while it blocks, then release it.
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Config.Shutdown(context.Background()) }()
	time.Sleep(10 * time.Millisecond) // let Shutdown start waiting
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("in-flight trace lost on graceful shutdown; ring has %d", len(traces))
	}
	if traces[0].Root != "GET /v1/slow" {
		t.Errorf("root = %q", traces[0].Root)
	}
}

// TestTransportInjectsTraceparent checks the client RoundTripper emits
// the context span's identity as a traceparent header, and leaves
// span-less requests untouched.
func TestTransportInjectsTraceparent(t *testing.T) {
	var mu sync.Mutex
	var got []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		got = append(got, r.Header.Get(TraceparentHeader))
		mu.Unlock()
	}))
	defer ts.Close()

	client := &http.Client{Transport: Transport{}}
	tracer := NewTracer(TracerConfig{SampleRate: 1, Seed: 7})

	ctx, span := tracer.StartRoot(context.Background(), "client.call")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if req.Header.Get(TraceparentHeader) != "" {
		t.Error("Transport mutated the caller's request")
	}
	wantID := span.TraceID()
	span.End()

	// A request with no span must carry no header.
	plain, err := http.NewRequestWithContext(context.Background(), http.MethodGet, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Do(plain)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("server saw %d requests", len(got))
	}
	sc, err := ParseTraceparent(got[0])
	if err != nil {
		t.Fatalf("injected header %q does not parse: %v", got[0], err)
	}
	if sc.TraceID.String() != wantID {
		t.Errorf("header trace ID %s, span trace ID %s", sc.TraceID, wantID)
	}
	if sc.Flags&FlagSampled == 0 {
		t.Error("injected header not flagged sampled")
	}
	if got[1] != "" {
		t.Errorf("span-less request carried traceparent %q", got[1])
	}
}

// TestTransportPreExistingHeader pins the overwrite semantics: when the
// context carries a span, its identity replaces any traceparent the
// caller already set (the span is the truth of this hop); with no span
// in the context a caller-set header passes through untouched.
func TestTransportPreExistingHeader(t *testing.T) {
	var mu sync.Mutex
	var got []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		got = append(got, r.Header.Get(TraceparentHeader))
		mu.Unlock()
	}))
	defer ts.Close()

	client := &http.Client{Transport: Transport{}}
	tracer := NewTracer(TracerConfig{SampleRate: 1, Seed: 3})

	stale := "00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa-bbbbbbbbbbbbbbbb-01"

	ctx, span := tracer.StartRoot(context.Background(), "client.call")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceparentHeader, stale)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h := req.Header.Get(TraceparentHeader); h != stale {
		t.Errorf("Transport mutated the caller's header to %q", h)
	}
	wantID := span.TraceID()
	span.End()

	plain, err := http.NewRequestWithContext(context.Background(), http.MethodGet, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain.Header.Set(TraceparentHeader, stale)
	resp, err = client.Do(plain)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("server saw %d requests", len(got))
	}
	sc, err := ParseTraceparent(got[0])
	if err != nil {
		t.Fatalf("outbound header %q does not parse: %v", got[0], err)
	}
	if sc.TraceID.String() != wantID {
		t.Errorf("span did not overwrite stale header: sent trace %s, span %s", sc.TraceID, wantID)
	}
	if got[1] != stale {
		t.Errorf("span-less request rewrote caller header to %q", got[1])
	}
}

// TestTransportConcurrent drives one shared Transport from many
// goroutines, each with its own span, and checks every request carried
// its own trace ID. Run under -race this also proves the clone-only
// design never mutates shared request state.
func TestTransportConcurrent(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string]int)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen[r.Header.Get(TraceparentHeader)]++
		mu.Unlock()
	}))
	defer ts.Close()

	client := &http.Client{Transport: Transport{}}
	tracer := NewTracer(TracerConfig{SampleRate: 1, Seed: 9})

	const callers = 16
	wantIDs := make([]string, callers)
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, span := tracer.StartRoot(context.Background(), "concurrent.call")
			defer span.End()
			wantIDs[i] = span.TraceID()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
			if err != nil {
				errs <- err
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	for i, id := range wantIDs {
		found := false
		for header := range seen {
			if sc, err := ParseTraceparent(header); err == nil && sc.TraceID.String() == id {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("caller %d trace %s never reached the server; saw %v", i, id, seen)
		}
	}
}
