// Package graph is the embedded graph store that hosts the final Probase
// taxonomy — the laptop-scale stand-in for the Trinity graph engine the
// paper deploys ([29, 30]). Nodes are string-interned labels; edges carry
// the discovery count n(x, y) and the plausibility P(x, y).
//
// The package mirrors the paper's two access patterns with two
// implementations of one read interface:
//
//   - Builder is the mutable store the construction pipeline
//     (Algorithms 1-2) writes into: interning, sorted-adjacency edge
//     upserts, cycle-refusal probes.
//   - Frozen is the immutable compressed-sparse-row (CSR) view the
//     serving path reads from: flat edge arrays with offset indexes,
//     a sorted label table, precomputed topological levels and depths,
//     and bitset traversals that allocate nothing per call.
//
// Reader is the seam between them: everything downstream of
// construction (the probabilistic layer, the query engine, the HTTP
// server, evaluation) reads the taxonomy through Reader and never
// mutates it. Builder.Freeze converts to the CSR view; NewBuilderFrom
// thaws any Reader back into a Builder when edges must be added again
// (taxonomy merging).
//
// Two checksummed binary snapshot formats are supported: v1 "PBGR"
// (adjacency-list, written by Builder.Save) and v2 "PBC2" (the CSR
// layout serialised directly, written by Frozen.Save and loaded with a
// sequential read into preallocated flat arrays). LoadFrozen
// auto-detects the format; v1 snapshots load through a freeze-on-load
// path so existing artifacts stay valid.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies an interned node.
type NodeID uint32

// NoNode is returned by Lookup for unknown labels.
const NoNode = NodeID(^uint32(0))

// Kind distinguishes concept nodes from instance (leaf) nodes. Per
// Section 3.1: nodes without out-edges are instances, others are concepts.
type Kind uint8

const (
	// KindConcept marks a node with out-edges.
	KindConcept Kind = iota
	// KindInstance marks a leaf node.
	KindInstance
)

// Edge is a directed isA edge from a super-concept to a sub-node.
type Edge struct {
	To           NodeID
	Count        int64   // n(x, y)
	Plausibility float64 // P(x, y), 0 when not yet computed
}

// Reader is the read-only view of a taxonomy graph, satisfied by both
// Builder (mutable, construction-time) and Frozen (immutable CSR,
// serving-time). The whole read path — the probabilistic layer, the
// query engine, the HTTP handlers, evaluation — depends on this
// interface only.
//
// Contract shared by both implementations:
//
//   - Adjacency lists (Children, Parents) are sorted by Edge.To in
//     ascending node order, and the returned slices alias internal
//     storage: callers must not modify them.
//   - Descendants and Ancestors return the closure excluding the start
//     node, deduplicated, in BFS order over the sorted adjacency.
//   - Roots, Concepts and Instances are sorted by label.
//   - TopoLevels partitions nodes into Algorithm 3's levels (each level
//     sorted by label) and errors on a cycle; Level is the longest path
//     down to a leaf per node. On Frozen both are precomputed: the
//     returned slices are shared and must be treated as read-only.
//
// Both implementations return byte-identical results for every Reader
// method on the same graph, which is what lets the query layer swap
// backends without changing a single answer (see ARCHITECTURE.md,
// "Storage layer").
type Reader interface {
	// NumNodes returns the node count.
	NumNodes() int
	// NumEdges returns the edge count.
	NumEdges() int
	// Lookup returns the node for the label, or NoNode.
	Lookup(label string) NodeID
	// Label returns the label of a node.
	Label(id NodeID) string
	// Kind classifies the node: out-edges make a concept, none an instance.
	Kind(id NodeID) Kind
	// Children returns the out-edges of a node, sorted by Edge.To.
	Children(id NodeID) []Edge
	// Parents returns the in-edges of a node (Edge.To is the parent),
	// sorted by Edge.To.
	Parents(id NodeID) []Edge
	// EdgeBetween returns the edge from -> to.
	EdgeBetween(from, to NodeID) (Edge, bool)
	// Roots returns all nodes without parents, sorted by label.
	Roots() []NodeID
	// Concepts returns all concept nodes, sorted by label.
	Concepts() []NodeID
	// Instances returns all instance (leaf) nodes, sorted by label.
	Instances() []NodeID
	// Descendants returns the descendant closure of id (excluding id),
	// deduplicated, in BFS order.
	Descendants(id NodeID) []NodeID
	// Ancestors returns the ancestor closure of id (excluding id) in BFS
	// order.
	Ancestors(id NodeID) []NodeID
	// HasPath reports whether to is reachable from from along out-edges.
	HasPath(from, to NodeID) bool
	// TopoLevels partitions the nodes into the levels of Algorithm 3:
	// L1 holds nodes with no parents; L(k) holds nodes all of whose
	// parents lie in L1..L(k-1). An error is returned on a cycle.
	TopoLevels() ([][]NodeID, error)
	// Level returns, for every node, the length of the longest path from
	// the node down to a leaf — the paper's definition of a concept's
	// level (Table 4): instances have level 0, their direct concepts
	// level >= 1.
	Level() ([]int, error)
}

// Interface checks: both storage backends satisfy the read seam.
var (
	_ Reader = (*Builder)(nil)
	_ Reader = (*Frozen)(nil)
)

// sortIDsByLabel orders ids by their label; shared by both backends so
// Roots/Concepts/Instances/TopoLevels agree byte-for-byte.
func sortIDsByLabel(g Reader, ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return g.Label(ids[i]) < g.Label(ids[j]) })
}

// rootsOf computes Roots for any Reader.
func rootsOf(g Reader) []NodeID {
	var roots []NodeID
	for id, n := 0, g.NumNodes(); id < n; id++ {
		if len(g.Parents(NodeID(id))) == 0 {
			roots = append(roots, NodeID(id))
		}
	}
	sortIDsByLabel(g, roots)
	return roots
}

// conceptsOf computes Concepts for any Reader.
func conceptsOf(g Reader) []NodeID {
	var out []NodeID
	for id, n := 0, g.NumNodes(); id < n; id++ {
		if len(g.Children(NodeID(id))) > 0 {
			out = append(out, NodeID(id))
		}
	}
	sortIDsByLabel(g, out)
	return out
}

// instancesOf computes Instances for any Reader.
func instancesOf(g Reader) []NodeID {
	var out []NodeID
	for id, n := 0, g.NumNodes(); id < n; id++ {
		if len(g.Children(NodeID(id))) == 0 {
			out = append(out, NodeID(id))
		}
	}
	sortIDsByLabel(g, out)
	return out
}

// topoLevels computes TopoLevels for any Reader by indegree peeling;
// each level is sorted by label before it is emitted, so the partition
// is deterministic and identical across backends.
func topoLevels(g Reader) ([][]NodeID, error) {
	n := g.NumNodes()
	remaining := make([]int, n)
	placed := 0
	for id := 0; id < n; id++ {
		remaining[id] = len(g.Parents(NodeID(id)))
	}
	var levels [][]NodeID
	var current []NodeID
	for id := 0; id < n; id++ {
		if remaining[id] == 0 {
			current = append(current, NodeID(id))
		}
	}
	for len(current) > 0 {
		sortIDsByLabel(g, current)
		levels = append(levels, current)
		placed += len(current)
		var next []NodeID
		for _, node := range current {
			for _, e := range g.Children(node) {
				remaining[e.To]--
				if remaining[e.To] == 0 {
					next = append(next, e.To)
				}
			}
		}
		current = next
	}
	if placed != n {
		return nil, fmt.Errorf("graph: cycle detected; %d of %d nodes unplaced", n-placed, n)
	}
	return levels, nil
}

// levelDepth computes Level from precomputed topological levels:
// children are finalised before parents by walking the levels in
// reverse.
func levelDepth(g Reader, levels [][]NodeID) []int {
	depth := make([]int, g.NumNodes())
	for i := len(levels) - 1; i >= 0; i-- {
		for _, node := range levels[i] {
			best := 0
			for _, e := range g.Children(node) {
				if d := depth[e.To] + 1; d > best {
					best = d
				}
			}
			depth[node] = best
		}
	}
	return depth
}
