// Semantic web search (Section 5.3.1): rewrite concept queries into their
// most typical instances and compare against word-for-word matching.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
	"repro/internal/prob"
)

func main() {
	world := corpus.DefaultWorld(1)
	web := corpus.NewGenerator(world, corpus.GenConfig{Sentences: 15000, Seed: 11}).Generate()
	inputs := make([]extraction.Input, len(web.Sentences))
	for i, s := range web.Sentences {
		inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
	}
	pb, err := core.Build(inputs, core.Config{
		Oracle: func(x, y string) (bool, bool) {
			if !world.KnownTerm(x) || !world.KnownTerm(y) {
				return false, false
			}
			return world.IsTrueIsA(x, y), true
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	idx := apps.NewPageIndex(web.Sentences)
	fmt.Printf("indexed %d pages\n\n", idx.NumPages())

	// The paper's example intent: "companies in tropical countries" —
	// concept queries that pages never phrase verbatim.
	for _, concept := range []string{"tropical countries", "IT companies", "domestic animals"} {
		fmt.Printf("query: %q\n", concept)
		fmt.Println("  rewrite:", topLabels(pb.InstancesOf(concept, 5)))
		hits := apps.SemanticSearch(pb, idx, concept, 8, 3)
		for _, pos := range hits {
			text := idx.PageText(pos)
			if len(text) > 100 {
				text = text[:100] + "..."
			}
			fmt.Printf("  page: %s\n", text)
		}
		fmt.Println()
	}

	// Aggregate comparison, as reported in EXPERIMENTS.md.
	keys := []string{"tropical country", "it company", "domestic animal", "european city"}
	rep := apps.EvaluateSearch(pb, idx, world, keys, 10)
	fmt.Printf("relevance of top-10 results over %d queries:\n", rep.Queries)
	fmt.Printf("  keyword search:  %.1f%%\n", 100*rep.KeywordRelevance)
	fmt.Printf("  semantic search: %.1f%% (paper: ~80%% vs <50%%)\n", 100*rep.SemanticRelevance)

	// Two-concept interpretation, the paper's "database conferences in
	// asian cities" mechanism: rewrite both concepts and pick the best
	// instance pairs by word association.
	sentIdx := apps.NewSentenceIndex(web.Sentences)
	fmt.Println("\nquery: \"companies in european countries\" — best instance pairs:")
	for _, p := range apps.InterpretQuery(pb, sentIdx, "companies", "european countries", 15, 5) {
		fmt.Printf("  %-25s %-12s (co-mentions: %d, home: %s)\n", p.A, p.B, p.Pages, world.Home(p.A))
	}
}

func topLabels(rs []prob.Ranked) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Label
	}
	return out
}
