package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/internal/window"
)

var (
	pbOnce sync.Once
	pbVal  *core.Probase
	pbErr  error
)

func testProbase(t testing.TB) *core.Probase {
	t.Helper()
	pbOnce.Do(func() {
		w := corpus.DefaultWorld(1)
		c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: 4000, Seed: 11}).Generate()
		inputs := make([]extraction.Input, len(c.Sentences))
		for i, s := range c.Sentences {
			inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
		}
		pbVal, pbErr = core.Build(inputs, core.Config{})
	})
	if pbErr != nil {
		t.Fatal(pbErr)
	}
	return pbVal
}

// TestOnceJSONAfterLoadgen is the e2e path CI's traffic-smoke job
// replays in-process: drive real traffic with the load generator, then
// poll with -once -json and check the payload is a valid, populated
// probase-traffic/v1 report.
func TestOnceJSONAfterLoadgen(t *testing.T) {
	ts := httptest.NewServer(server.New(testProbase(t), server.Config{}).Handler())
	defer ts.Close()

	if _, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:      ts.URL,
		Workers:     4,
		MaxRequests: 400,
		Duration:    30 * time.Second,
		Seed:        7,
		Queries:     200,
	}); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if err := run(context.Background(), []string{"-target", ts.URL, "-once", "-json"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	raw := out.Bytes()
	if err := benchfmt.ValidateBytesAs("probase-top -once -json", raw, trafficSchema); err != nil {
		t.Fatal(err)
	}
	var report benchfmt.Report
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	total, ok := report.Experiment("total")
	if !ok {
		t.Fatal("no total experiment")
	}
	wins := total.Result.(map[string]any)["windows"].([]any)
	if reqs := wins[0].(map[string]any)["requests"].(float64); reqs < 400 {
		t.Errorf("total 1m requests = %v, want >= 400", reqs)
	}
	if _, ok := report.Experiment("slo"); !ok {
		t.Fatal("no slo experiment")
	}
	if _, ok := report.Experiment("traffic:instances"); !ok {
		t.Fatal("no traffic:instances experiment")
	}
}

func TestOnceTextFrame(t *testing.T) {
	ts := httptest.NewServer(server.New(testProbase(t), server.Config{}).Handler())
	defer ts.Close()

	// A little identifiable traffic so the frame has hot keys.
	client := ts.Client()
	for i := 0; i < 5; i++ {
		resp, err := client.Get(ts.URL + "/v1/instances?concept=companies&k=5")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var out, errOut bytes.Buffer
	if err := run(context.Background(), []string{"-target", ts.URL, "-once"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	frame := out.String()
	for _, want := range []string{"ENDPOINT", "TOTAL", "instances", "slo OK", "companies(5)"} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "\x1b[") {
		t.Error("-once frame contains ANSI escapes; those are for live mode only")
	}
}

func TestJSONRequiresOnce(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(context.Background(), []string{"-json"}, &out, &errOut); err == nil {
		t.Fatal("-json without -once accepted")
	}
}

func httpHandlerJSON(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		io.WriteString(w, body)
	})
}

func TestFetchRejectsWrongSchema(t *testing.T) {
	// A server speaking the wrong schema must be rejected by validation,
	// not rendered as an empty frame.
	ts := httptest.NewServer(httpHandlerJSON(`{"schema":"probase-bench/v1","build":{},"options":{"scale":1,"sentences":1,"seed":0,"queries":0},"setup_seconds":0,"experiments":[{"name":"x","seconds":0,"result":{}}],"total_seconds":1}`))
	defer ts.Close()
	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{"-target", ts.URL, "-once", "-json"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("err = %v, want schema mismatch", err)
	}
}

func TestPickWindow(t *testing.T) {
	ws := []window.Stats{{Window: "1m", Requests: 5}, {Window: "5m", Requests: 9}}
	if got := pick(ws, "5m"); got.Requests != 9 {
		t.Fatalf("pick(5m) = %+v", got)
	}
	if got := pick(ws, "30m"); got.Requests != 0 || got.Window != "30m" {
		t.Fatalf("pick(missing) = %+v", got)
	}
}
