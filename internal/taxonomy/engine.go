package taxonomy

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/parallel"
)

// engine holds the merge state of Algorithm 2: a set of local taxonomies
// (shrinking under horizontal merges) and the vertical links between
// them. It supports both the staged horizontal-first schedule (Theorem 2's
// minimal schedule, used in production) and arbitrary-order merging (used
// to verify Theorem 1's confluence).
type engine struct {
	sim    Similarity
	nodes  []*Local // nil entries are merged-away locals
	parent []int    // union-find over node indexes
	links  map[[2]int]bool
	hops   int // horizontal merge operations performed
	vops   int // vertical merge operations performed
}

func newEngine(locals []*Local, sim Similarity) *engine {
	e := &engine{
		sim:    sim,
		nodes:  make([]*Local, len(locals)),
		parent: make([]int, len(locals)),
		links:  make(map[[2]int]bool),
	}
	for i, l := range locals {
		e.nodes[i] = l.clone()
		e.parent[i] = i
	}
	return e
}

func (e *engine) find(i int) int {
	for e.parent[i] != i {
		e.parent[i] = e.parent[e.parent[i]]
		i = e.parent[i]
	}
	return i
}

// alive returns the live representative indexes, sorted.
func (e *engine) alive() []int {
	var out []int
	for i := range e.nodes {
		if e.find(i) == i {
			out = append(out, i)
		}
	}
	return out
}

// canHorizontal reports whether live locals a and b may merge.
func (e *engine) canHorizontal(a, b int) bool {
	if a == b {
		return false
	}
	la, lb := e.nodes[a], e.nodes[b]
	return la.Root == lb.Root && e.sim.Similar(la.Children, lb.Children)
}

// mergeNodes folds b into a without touching the link set or counters —
// the label-local core of a horizontal merge, safe to run concurrently
// for distinct labels while no links exist.
func (e *engine) mergeNodes(a, b int) {
	e.nodes[a].absorb(e.nodes[b])
	e.nodes[b] = nil
	e.parent[b] = a
}

// mergeHorizontal folds b into a.
func (e *engine) mergeHorizontal(a, b int) {
	e.mergeNodes(a, b)
	// Retarget links through the union-find lazily; normalise now to keep
	// the link set canonical.
	if len(e.links) > 0 {
		fresh := make(map[[2]int]bool, len(e.links))
		for k := range e.links {
			from, to := e.find(k[0]), e.find(k[1])
			if from != to {
				fresh[[2]int{from, to}] = true
			}
		}
		e.links = fresh
	}
	e.hops++
}

// canVertical reports whether a link a -> b may be added: b's root is one
// of a's children, the children align, and the link is new.
func (e *engine) canVertical(a, b int) bool {
	if a == b {
		return false
	}
	la, lb := e.nodes[a], e.nodes[b]
	if _, ok := la.Children[lb.Root]; !ok {
		return false
	}
	if e.links[[2]int{a, b}] {
		return false
	}
	return e.sim.Similar(la.Children, lb.Children)
}

// mergeVertical links a -> b.
func (e *engine) mergeVertical(a, b int) {
	e.links[[2]int{a, b}] = true
	e.vops++
}

// runStaged performs all possible horizontal merges first, then all
// vertical merges — the schedule Theorem 2 proves minimal.
func (e *engine) runStaged() {
	e.runHorizontal()
	e.runVertical()
}

// runHorizontal performs the horizontal stage, per root label, with a
// shared-child candidate index to avoid the quadratic scan.
func (e *engine) runHorizontal() {
	e.runHorizontalParallel(1)
}

// runHorizontalParallel runs the horizontal stage with a worker pool over
// root labels. Labels merge independently (a horizontal merge only
// involves locals of one label, Section 3.4), and the link set is empty
// before the vertical stage, so workers write disjoint state — this is
// the shared-memory analogue of the paper's 30-machine construction job.
// Per-root merge counts land in index-ordered slots and are summed
// serially, so e.hops is scheduling-independent too.
func (e *engine) runHorizontalParallel(workers int) {
	byRoot := make(map[string][]int)
	for _, i := range e.alive() {
		byRoot[e.nodes[i].Root] = append(byRoot[e.nodes[i].Root], i)
	}
	roots := make([]string, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	if len(e.links) > 0 {
		// Links retarget through the union-find on merge; with links
		// present (only in the random-order experiments) roots are no
		// longer independent, so fall back to the serial schedule.
		workers = 1
	}
	merges := make([]int, len(roots))
	_ = parallel.ForEach(context.Background(), workers, len(roots), func(i int) error {
		merges[i] = e.horizontalFixpoint(byRoot[roots[i]])
		return nil
	})
	for _, m := range merges {
		e.hops += m
	}
}

// runVertical performs the vertical stage. One pass suffices because
// children no longer change.
func (e *engine) runVertical() {
	e.runVerticalParallel(1)
}

// runVerticalParallel runs the vertical stage with a worker pool over
// the live sense clusters. Each link decision canVertical(a, b) reads
// only merge-frozen state — the child sets (fixed once the horizontal
// stage ends) and the pre-existing link set — and within one pass a
// given (a, b) pair is visited at most once (child labels are unique
// per cluster and each b has one root label), so no decision depends on
// another's outcome. Candidate links are therefore computed into
// per-cluster slots concurrently and applied serially in the exact
// (live order, child-label order, byRootLive order) the serial loop
// uses, making the link set and vops count scheduling-independent.
func (e *engine) runVerticalParallel(workers int) {
	byRootLive := make(map[string][]int)
	live := e.alive()
	for _, i := range live {
		byRootLive[e.nodes[i].Root] = append(byRootLive[e.nodes[i].Root], i)
	}
	found := make([][][2]int, len(live))
	_ = parallel.ForEach(context.Background(), workers, len(live), func(i int) error {
		a := live[i]
		var links [][2]int
		for _, y := range e.nodes[a].childLabels() {
			for _, b := range byRootLive[y] {
				if e.canVertical(a, b) {
					links = append(links, [2]int{a, b})
				}
			}
		}
		found[i] = links
		return nil
	})
	for _, links := range found {
		for _, l := range links {
			e.mergeVertical(l[0], l[1])
		}
	}
}

// adoptFragments is a reproduction-scale adaptation applied between the
// horizontal and vertical stages: at web scale, same-sense sentence
// fragments chain-merge transitively through δ shared children, but a
// laptop-scale corpus leaves many short-list fragments that never reach
// the δ=2 threshold, shattering a concept like "company" into hundreds of
// spurious senses. A fragment cluster is adopted by the heaviest cluster
// of its label with which it shares at least one child; zero-overlap
// clusters — genuine sense candidates such as the industrial reading of
// "plant" — stay separate. Returns the number of adoptions.
func (e *engine) adoptFragments() int {
	byRoot := make(map[string][]int)
	for _, i := range e.alive() {
		byRoot[e.nodes[i].Root] = append(byRoot[e.nodes[i].Root], i)
	}
	roots := make([]string, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	adoptions := 0
	mass := func(i int) int64 {
		var m int64
		for _, v := range e.nodes[i].Children {
			m += v
		}
		return m
	}
	for _, r := range roots {
		ids := byRoot[r]
		for {
			var live []int
			for _, i := range ids {
				if e.find(i) == i && e.nodes[i] != nil {
					live = append(live, i)
				}
			}
			if len(live) < 2 {
				break
			}
			sort.Slice(live, func(a, b int) bool {
				ma, mb := mass(live[a]), mass(live[b])
				if ma != mb {
					return ma > mb
				}
				return live[a] < live[b]
			})
			changed := false
		scan:
			for i := 1; i < len(live); i++ {
				for j := 0; j < i; j++ {
					if overlap(e.nodes[live[j]].Children, e.nodes[live[i]].Children) >= 1 {
						e.mergeHorizontal(live[j], live[i])
						adoptions++
						changed = true
						break scan
					}
				}
			}
			if !changed {
				break
			}
		}
	}
	return adoptions
}

// horizontalFixpoint merges the given same-root locals until no two are
// similar, returning the number of merges. Candidates are discovered
// through shared children; Property 4 guarantees the fixpoint is
// order-independent.
func (e *engine) horizontalFixpoint(ids []int) int {
	merges := 0
	liveSet := make(map[int]bool, len(ids))
	for _, i := range ids {
		if e.find(i) == i {
			liveSet[i] = true
		}
	}
	for {
		merged := false
		// Build child -> holders index over the live locals.
		index := make(map[string][]int)
		var live []int
		for i := range liveSet {
			live = append(live, i)
		}
		sort.Ints(live)
		for _, i := range live {
			for c := range e.nodes[i].Children {
				index[c] = append(index[c], i)
			}
		}
		keys := make([]string, 0, len(index))
		for c := range index {
			keys = append(keys, c)
		}
		sort.Strings(keys)
		for _, c := range keys {
			holders := index[c]
			for i := 0; i < len(holders); i++ {
				a := e.find(holders[i])
				for j := i + 1; j < len(holders); j++ {
					b := e.find(holders[j])
					if a == b || !liveSet[a] || !liveSet[b] {
						continue
					}
					if e.canHorizontal(a, b) {
						e.mergeNodes(a, b)
						merges++
						delete(liveSet, b)
						merged = true
					}
				}
			}
		}
		if !merged {
			return merges
		}
	}
}

// runRandomOrder applies applicable merge operations in a random order
// until no operation applies. Used to validate Theorem 1 (confluence) and
// Theorem 2 (horizontal-first minimality).
func (e *engine) runRandomOrder(rng *rand.Rand) {
	for {
		live := e.alive()
		type op struct {
			a, b     int
			vertical bool
		}
		var ops []op
		for _, a := range live {
			for _, b := range live {
				if a == b {
					continue
				}
				if a < b && e.canHorizontal(a, b) {
					ops = append(ops, op{a, b, false})
				}
				if e.canVertical(a, b) {
					ops = append(ops, op{a, b, true})
				}
			}
		}
		if len(ops) == 0 {
			return
		}
		o := ops[rng.Intn(len(ops))]
		if o.vertical {
			e.mergeVertical(o.a, o.b)
		} else {
			e.mergeHorizontal(o.a, o.b)
		}
	}
}

// fingerprint canonically serialises the final merge state: the multiset
// of clusters and the links between them, independent of internal ids.
// Two confluent runs produce equal fingerprints.
func (e *engine) fingerprint() string {
	live := e.alive()
	sig := make(map[int]string, len(live))
	for _, i := range live {
		l := e.nodes[i]
		var b strings.Builder
		b.WriteString(l.Root)
		b.WriteString("::")
		for _, c := range l.childLabels() {
			fmt.Fprintf(&b, "%s=%d;", c, l.Children[c])
		}
		sig[i] = b.String()
	}
	var clusters []string
	for _, i := range live {
		clusters = append(clusters, sig[i])
	}
	sort.Strings(clusters)
	var links []string
	for k := range e.links {
		from, to := e.find(k[0]), e.find(k[1])
		links = append(links, sig[from]+" -> "+sig[to])
	}
	sort.Strings(links)
	return strings.Join(clusters, "\n") + "\n#links\n" + strings.Join(links, "\n")
}

// OrderExperiment runs the same local-taxonomy set through the staged
// schedule and through a randomly ordered schedule, returning the
// operation counts and whether the final graphs agree — the empirical
// check of Theorems 1 and 2.
func OrderExperiment(locals []*Local, sim Similarity, seed int64) (stagedOps, randomOps int, same bool) {
	a := newEngine(locals, sim)
	a.runStaged()
	b := newEngine(locals, sim)
	b.runRandomOrder(rand.New(rand.NewSource(seed)))
	return a.hops + a.vops, b.hops + b.vops, a.fingerprint() == b.fingerprint()
}
