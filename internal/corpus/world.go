// Package corpus is the web-corpus substrate. The paper extracts from
// 1.68 billion crawled web pages; this package replaces that corpus with a
// deterministic synthetic generator driven by a ground-truth world model.
// The generator emits exactly the sentence shapes and ambiguity classes the
// paper enumerates (Hearst patterns with "other than" decoys, compound
// instance names, non-noun-phrase instances, trailing junk lists,
// multi-sense concept labels, and erroneous claims), while retaining the
// ground truth so that precision and typicality can be *measured* rather
// than sampled by human judges.
package corpus

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/nlp"
)

// Concept is one ground-truth concept node. Concepts with the same Label
// but different Key model word senses (e.g. plant#organism vs
// plant#industrial); the taxonomy builder must separate them from text
// evidence alone.
type Concept struct {
	Key        string   // unique key: "label" or "label#sense"
	Label      string   // singular surface form, e.g. "plant"
	Parents    []string // keys of parent concepts
	Children   []string // keys of child concepts (filled by World.link)
	Instances  []string // instances ordered by ground-truth typicality (most typical first)
	Attributes []string // ground-truth attributes of the concept's instances
	Parts      []string // components of the concept's instances ("tree" has "branch", "leaf"...)
}

// PluralLabel returns the plural surface form of the concept label.
func (c *Concept) PluralLabel() string { return nlp.PluralizePhrase(c.Label) }

// World is the ground-truth taxonomy that drives corpus generation and
// against which extraction output is judged.
type World struct {
	concepts map[string]*Concept
	order    []string            // deterministic key order
	byLabel  map[string][]string // label -> keys (multi-sense labels have several)
	// instanceOf maps a lower-cased instance surface form to the set of
	// concept keys it directly belongs to.
	instanceOf map[string]map[string]bool
	// home maps an organisation instance (lower-cased) to the country
	// instance it is based in — the relational ground truth behind the
	// two-concept query-interpretation experiment. homeNames keeps the
	// original surface forms.
	home      map[string]string
	homeNames []string
}

// NewWorld builds a world from concept definitions. It validates parent
// references and computes the derived indexes.
func NewWorld(concepts []*Concept) (*World, error) {
	w := &World{
		concepts:   make(map[string]*Concept, len(concepts)),
		byLabel:    make(map[string][]string),
		instanceOf: make(map[string]map[string]bool),
	}
	for _, c := range concepts {
		if c.Key == "" || c.Label == "" {
			return nil, fmt.Errorf("corpus: concept with empty key or label: %+v", c)
		}
		if _, dup := w.concepts[c.Key]; dup {
			return nil, fmt.Errorf("corpus: duplicate concept key %q", c.Key)
		}
		cc := *c
		cc.Children = nil
		w.concepts[c.Key] = &cc
		w.order = append(w.order, c.Key)
		nl := nlp.Normalize(cc.Label)
		w.byLabel[nl] = append(w.byLabel[nl], c.Key)
	}
	for _, key := range w.order {
		c := w.concepts[key]
		for _, p := range c.Parents {
			pc, ok := w.concepts[p]
			if !ok {
				return nil, fmt.Errorf("corpus: concept %q references unknown parent %q", key, p)
			}
			pc.Children = append(pc.Children, key)
		}
		for _, inst := range c.Instances {
			li := strings.ToLower(inst)
			set := w.instanceOf[li]
			if set == nil {
				set = make(map[string]bool)
				w.instanceOf[li] = set
			}
			set[key] = true
		}
	}
	if err := w.checkAcyclic(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *World) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(w.concepts))
	var visit func(k string) error
	visit = func(k string) error {
		switch color[k] {
		case gray:
			return fmt.Errorf("corpus: concept cycle through %q", k)
		case black:
			return nil
		}
		color[k] = gray
		for _, ch := range w.concepts[k].Children {
			if err := visit(ch); err != nil {
				return err
			}
		}
		color[k] = black
		return nil
	}
	for _, k := range w.order {
		if err := visit(k); err != nil {
			return err
		}
	}
	return nil
}

// Concept returns the concept with the given key, or nil.
func (w *World) Concept(key string) *Concept { return w.concepts[key] }

// Keys returns all concept keys in definition order.
func (w *World) Keys() []string {
	out := make([]string, len(w.order))
	copy(out, w.order)
	return out
}

// KeysForLabel returns the concept keys sharing a singular label
// (case-insensitive).
func (w *World) KeysForLabel(label string) []string {
	keys := w.byLabel[nlp.Normalize(label)]
	out := make([]string, len(keys))
	copy(out, keys)
	return out
}

// NumConcepts returns the number of concept nodes.
func (w *World) NumConcepts() int { return len(w.concepts) }

// descendants returns the closure of child keys under key, inclusive.
func (w *World) descendants(key string) map[string]bool {
	seen := map[string]bool{key: true}
	stack := []string{key}
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ch := range w.concepts[k].Children {
			if !seen[ch] {
				seen[ch] = true
				stack = append(stack, ch)
			}
		}
	}
	return seen
}

// InstancesOf returns all instances in the closure of key, most typical
// first within each concept, without duplicates.
func (w *World) InstancesOf(key string) []string {
	var out []string
	seen := make(map[string]bool)
	desc := w.descendants(key)
	keys := make([]string, 0, len(desc))
	for k := range desc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// The root concept's own instances first (they carry the typicality
	// ordering), then descendants'.
	ordered := append([]string{key}, keys...)
	for _, k := range ordered {
		if !desc[k] {
			continue
		}
		for _, inst := range w.concepts[k].Instances {
			li := strings.ToLower(inst)
			if !seen[li] {
				seen[li] = true
				out = append(out, inst)
			}
		}
	}
	return out
}

// IsInstanceOfKey reports whether inst is an instance of the concept key's
// closure.
func (w *World) IsInstanceOfKey(inst, key string) bool {
	set := w.instanceOf[strings.ToLower(inst)]
	if set == nil {
		return false
	}
	for k := range set {
		if w.reachable(key, k) {
			return true
		}
	}
	return false
}

// reachable reports whether to is in the descendant closure of from.
func (w *World) reachable(from, to string) bool {
	if from == to {
		return true
	}
	return w.descendants(from)[to]
}

// IsTrueIsA judges an extracted pair: x is a (possibly plural) concept
// surface form, y either an instance or a concept surface form. The pair
// is true when, for *some* sense of x, y is an instance in its closure or
// a descendant concept. This is the ground-truth oracle behind the
// precision figures (Figures 9 and 11).
func (w *World) IsTrueIsA(x, y string) bool {
	xs := w.keysForSurface(x)
	if len(xs) == 0 {
		return false
	}
	ykeys := w.keysForSurface(y)
	yn := nlp.Normalize(y)
	ysing := nlp.SingularizePhrase(yn)
	yplur := nlp.PluralizePhrase(yn)
	for _, xk := range xs {
		if w.IsInstanceOfKey(y, xk) || w.IsInstanceOfKey(ysing, xk) || w.IsInstanceOfKey(yplur, xk) {
			return true
		}
		for _, yk := range ykeys {
			if xk != yk && w.reachable(xk, yk) {
				return true
			}
		}
	}
	return false
}

// KnownTerm reports whether the surface form names any concept or
// instance in the world, tolerating case and number variation.
func (w *World) KnownTerm(s string) bool {
	if len(w.keysForSurface(s)) > 0 {
		return true
	}
	if _, ok := w.instanceOf[strings.ToLower(s)]; ok {
		return true
	}
	n := nlp.Normalize(s)
	if _, ok := w.instanceOf[nlp.SingularizePhrase(n)]; ok {
		return true
	}
	_, ok := w.instanceOf[nlp.PluralizePhrase(n)]
	return ok
}

// keysForSurface resolves a (possibly plural, possibly cased) concept
// surface form to concept keys.
func (w *World) keysForSurface(s string) []string {
	label := nlp.Normalize(s)
	if keys := w.byLabel[label]; len(keys) > 0 {
		return keys
	}
	return w.byLabel[nlp.SingularizePhrase(label)]
}

// ConceptSurface reports whether s is the (singular or plural) label of
// some concept.
func (w *World) ConceptSurface(s string) bool { return len(w.keysForSurface(s)) > 0 }

// SetHome records that the instance is based in the given country.
func (w *World) SetHome(instance, country string) {
	if w.home == nil {
		w.home = make(map[string]string)
	}
	key := strings.ToLower(instance)
	if _, seen := w.home[key]; !seen {
		w.homeNames = append(w.homeNames, instance)
	}
	w.home[key] = country
}

// Home returns the country an instance is based in, or "".
func (w *World) Home(instance string) string {
	return w.home[strings.ToLower(instance)]
}

// HomedInstances returns the instances (original surface forms) that have
// a recorded home, sorted.
func (w *World) HomedInstances() []string {
	out := append([]string(nil), w.homeNames...)
	sort.Strings(out)
	return out
}

// IsPart reports whether y is a ground-truth component of the concept
// surface form x ("branch" is a part of trees, not a kind of tree).
func (w *World) IsPart(x, y string) bool {
	yn := nlp.SingularizePhrase(nlp.Normalize(y))
	for _, xk := range w.keysForSurface(x) {
		for _, p := range w.concepts[xk].Parts {
			if p == yn {
				return true
			}
		}
	}
	return false
}

// TypicalityRank returns the ground-truth typicality rank (0 = most
// typical) of inst within the concept key's own instance list, or -1.
func (w *World) TypicalityRank(key, inst string) int {
	c := w.concepts[key]
	if c == nil {
		return -1
	}
	li := strings.ToLower(inst)
	for i, have := range c.Instances {
		if strings.ToLower(have) == li {
			return i
		}
	}
	return -1
}

// Stats summarises the world for reporting.
type WorldStats struct {
	Concepts  int
	Instances int
	Labels    int
	IsAPairs  int // direct concept-subconcept + concept-instance links
}

// Stats returns summary counts.
func (w *World) Stats() WorldStats {
	var st WorldStats
	st.Concepts = len(w.concepts)
	st.Labels = len(w.byLabel)
	st.Instances = len(w.instanceOf)
	for _, c := range w.concepts {
		st.IsAPairs += len(c.Children) + len(c.Instances)
	}
	return st
}
