// Package extraction implements the semantic iterative isA-extraction
// framework of Section 2 (Algorithm 1). A fixed set of Hearst patterns is
// matched syntactically (internal/hearst); the ambiguity in the matches —
// which noun phrase is the super-concept, whether "Proctor and Gamble" is
// one company or two, where a candidate list really ends — is resolved
// with likelihood ratios computed from the knowledge Γ accumulated in
// earlier rounds. Sentences that cannot be resolved yet are retried in
// later rounds, when Γ knows more.
package extraction

import (
	"runtime"

	"repro/internal/obs"
)

// Config holds the thresholds of Algorithm 1. The zero value is unusable;
// start from DefaultConfig.
type Config struct {
	// SuperRatio is the likelihood-ratio threshold for super-concept
	// detection (Section 2.3.2): the best candidate must beat the runner-up
	// by this factor.
	SuperRatio float64
	// SubRatio is the likelihood-ratio threshold for resolving ambiguous
	// sub-concept readings (Section 2.3.3), e.g. "Proctor and Gamble" as
	// one name versus two.
	SubRatio float64
	// SubMinCount is the minimum n(x, y) for a candidate at position k to
	// anchor the valid-scope search (Observation 2): the largest k whose
	// candidate reaches this count bounds the accepted positions.
	SubMinCount int64
	// Epsilon replaces zero probabilities in likelihood ratios
	// (Section 2.3.2: "we let p(y|x) = ε ... when (x,y) is not in Γ").
	Epsilon float64
	// ModifierDiscount weights probabilities borrowed from the
	// modifier-stripped concept when a candidate super-concept is not yet
	// in Γ ("domestic animals" borrowing from "animals").
	ModifierDiscount float64
	// MaxRounds caps the number of iterations per settle; the driver also
	// stops at the fixpoint (no new pairs).
	MaxRounds int
	// ChunkSize is the consume granularity of the extraction fold: the
	// fixpoint settles each time the global sentence index crosses a
	// multiple of ChunkSize. Boundaries are absolute corpus positions, not
	// relative to a run, which is what makes a base run plus a resumed
	// delta bit-identical to one run over the concatenated corpus: both
	// settle at exactly the same points. Must match between the run that
	// wrote a checkpoint and the run resuming it.
	ChunkSize int
	// Workers is the map-phase parallelism.
	Workers int
	// MaxEvidencePerPair caps stored evidence per pair (the noisy-or
	// saturates quickly); 0 keeps everything.
	MaxEvidencePerPair int
	// Reporter receives per-round telemetry from the Algorithm 1 driver
	// (stage "extraction"); nil discards it.
	Reporter obs.StageReporter
}

// DefaultConfig returns the thresholds used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		SuperRatio:         5,
		SubRatio:           2,
		SubMinCount:        2,
		Epsilon:            1e-6,
		ModifierDiscount:   0.5,
		MaxRounds:          12,
		ChunkSize:          1024,
		Workers:            runtime.GOMAXPROCS(0),
		MaxEvidencePerPair: 32,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.SuperRatio <= 0 {
		c.SuperRatio = d.SuperRatio
	}
	if c.SubRatio <= 0 {
		c.SubRatio = d.SubRatio
	}
	if c.SubMinCount <= 0 {
		c.SubMinCount = d.SubMinCount
	}
	if c.Epsilon <= 0 {
		c.Epsilon = d.Epsilon
	}
	if c.ModifierDiscount <= 0 {
		c.ModifierDiscount = d.ModifierDiscount
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = d.MaxRounds
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = d.ChunkSize
	}
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.MaxEvidencePerPair < 0 {
		c.MaxEvidencePerPair = 0
	}
	return c
}
