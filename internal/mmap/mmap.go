// Package mmap provides a read-only memory mapping of a file — the
// storage primitive behind zero-copy PBC2 snapshot loading. On Linux
// and macOS the mapping is a real mmap(2): the file's pages enter the
// process address space lazily, stay off the Go heap, and are shared
// through the page cache with every other process mapping the same
// snapshot. Everywhere else (or when built with the probase_nommap
// tag) Open degrades to reading the file into an anonymous byte slice,
// so callers never need a platform branch: the fallback costs one copy
// but preserves the API and the lifetime contract.
//
// The lifetime contract is the whole point of the type: Bytes() views
// become invalid the instant Close runs. Callers that hand Bytes() to
// long-lived structures (graph.LoadMapped) must keep the Mapping alive
// and close it only after the last reader is done — the serving layer
// does this with a refcounted snapshot epoch (see internal/server).
package mmap

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Mapping is a read-only view of a file's contents. Safe for
// concurrent readers; Close is idempotent and safe to call while no
// reader holds a Bytes() view.
type Mapping struct {
	data   []byte
	mapped bool // true when data is a real OS mapping, not a heap copy
	closed atomic.Bool
}

// Open maps the file at path read-only. An empty file yields an empty,
// valid mapping. The returned Mapping must be closed; closing is the
// only way the pages (or the fallback copy) are released.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmap: %s: size %d overflows int", path, size)
	}
	return openFile(f, int(size))
}

// Bytes returns the mapped contents. The slice aliases the mapping:
// it must not be modified, and it must not be used after Close.
func (m *Mapping) Bytes() []byte { return m.data }

// Mapped reports whether the data is a true OS memory mapping (false
// on the portable copying fallback).
func (m *Mapping) Mapped() bool { return m.mapped }

// Close releases the mapping. Idempotent: the second and later calls
// are no-ops. After Close every slice previously returned by Bytes is
// invalid — on a real mapping, touching it faults.
func (m *Mapping) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	data := m.data
	m.data = nil
	if !m.mapped || len(data) == 0 {
		return nil
	}
	return unmap(data)
}
