package parallel_test

import (
	"context"
	"fmt"

	"repro/internal/parallel"
)

// ExampleForEach shows the pipeline's fork-join shape: compute into
// per-index slots concurrently, then reduce serially in index order —
// so the result is independent of goroutine scheduling.
func ExampleForEach() {
	squares := make([]int, 6)
	err := parallel.ForEach(context.Background(), 4, len(squares), func(i int) error {
		squares[i] = i * i // each item owns slot i; no locks needed
		return nil
	})
	if err != nil {
		panic(err)
	}
	sum := 0
	for _, s := range squares { // serial reduce, deterministic order
		sum += s
	}
	fmt.Println(squares, sum)
	// Output:
	// [0 1 4 9 16 25] 55
}

// ExampleMap collects results in index order no matter which worker
// produced them.
func ExampleMap() {
	labels, err := parallel.Map(context.Background(), 8, 4, func(i int) (string, error) {
		return fmt.Sprintf("level-%d", i), nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(labels)
	// Output:
	// [level-0 level-1 level-2 level-3]
}
