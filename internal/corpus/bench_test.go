package corpus

import "testing"

func BenchmarkExpand(b *testing.B) {
	seed := SeedConcepts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Expand(seed, ExpandOptions{Scale: 1, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	w := DefaultWorld(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewGenerator(w, GenConfig{Sentences: 10000, Seed: int64(i)}).Generate()
		if len(c.Sentences) != 10000 {
			b.Fatal("bad corpus")
		}
	}
}

func BenchmarkIsTrueIsA(b *testing.B) {
	w := DefaultWorld(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.IsTrueIsA("companies", "IBM")
		w.IsTrueIsA("dogs", "cat")
	}
}
