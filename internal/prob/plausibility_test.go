package prob

import (
	"testing"

	"repro/internal/kb"
)

// trainingStore builds a Γ where good pairs carry early-position,
// high-authority evidence and bad pairs carry tail-position, low-authority
// evidence.
func trainingStore() *kb.Store {
	s := kb.NewStore(0)
	for i := 0; i < 30; i++ {
		s.Add("animal", "cat", 1)
		s.AddEvidence("animal", "cat", kb.Evidence{Pattern: 1, PageScore: 0.8, ListLen: 3, Pos: 1})
	}
	for i := 0; i < 3; i++ {
		s.Add("dog", "cat", 1)
		s.AddEvidence("dog", "cat", kb.Evidence{Pattern: 4, PageScore: 0.05, ListLen: 6, Pos: 5})
	}
	for i := 0; i < 25; i++ {
		s.Add("company", "IBM", 1)
		s.AddEvidence("company", "IBM", kb.Evidence{Pattern: 1, PageScore: 0.7, ListLen: 2, Pos: 1})
	}
	for i := 0; i < 2; i++ {
		s.Add("country", "Europe", 1)
		s.AddEvidence("country", "Europe", kb.Evidence{Pattern: 5, PageScore: 0.1, ListLen: 6, Pos: 6})
	}
	return s
}

func trainingOracle(x, y string) (bool, bool) {
	truths := map[[2]string]bool{
		{"animal", "cat"}:     true,
		{"company", "IBM"}:    true,
		{"dog", "cat"}:        false,
		{"country", "Europe"}: false,
	}
	v, ok := truths[[2]string{x, y}]
	return v, ok
}

func TestPlausibilitySeparatesGoodFromBad(t *testing.T) {
	s := trainingStore()
	m := Train(s, trainingOracle)
	good := m.Plausibility("animal", "cat")
	bad := m.Plausibility("dog", "cat")
	if good <= bad {
		t.Errorf("plausibility does not separate: good=%v bad=%v", good, bad)
	}
	if good < 0.9 {
		t.Errorf("good plausibility = %v, want >= 0.9 (30 sightings)", good)
	}
	if bad > 0.7 {
		t.Errorf("bad plausibility = %v, want < 0.7", bad)
	}
}

func TestPlausibilityUnknownPair(t *testing.T) {
	s := trainingStore()
	m := Train(s, trainingOracle)
	if got := m.Plausibility("animal", "unseen"); got != 0 {
		t.Errorf("unknown pair plausibility = %v, want 0", got)
	}
}

func TestPlausibilityCountFallback(t *testing.T) {
	s := kb.NewStore(0)
	s.Add("animal", "cat", 4) // counts without evidence records
	m := Train(s, func(x, y string) (bool, bool) { return false, false })
	got := m.Plausibility("animal", "cat")
	want := 1 - 0.5*0.5*0.5*0.5
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("fallback plausibility = %v, want %v", got, want)
	}
}

func TestPlausibilityNegativeEvidence(t *testing.T) {
	// A trained model scores the strong evidence shape near 0.95; turning
	// one of two such records negative must lower the noisy-or (the
	// paper's Eq. 1 extension: replace the 1-p_i factor with p_i).
	strong := kb.Evidence{Pattern: 1, PageScore: 0.8, ListLen: 3, Pos: 1}
	build := func(negative bool) float64 {
		s := trainingStore()
		s.Add("b", "a", 2)
		s.AddEvidence("b", "a", strong)
		ev := strong
		ev.Negative = negative
		s.AddEvidence("b", "a", ev)
		return Train(s, trainingOracle).Plausibility("b", "a")
	}
	withNeg, withoutNeg := build(true), build(false)
	if withNeg >= withoutNeg {
		t.Errorf("negative evidence did not lower plausibility: %v vs %v", withNeg, withoutNeg)
	}
}

func TestEvidenceProbClamped(t *testing.T) {
	s := trainingStore()
	m := Train(s, trainingOracle)
	p := m.EvidenceProb("animal", "cat", kb.Evidence{Pattern: 1, PageScore: 0.8, ListLen: 3, Pos: 1})
	if p < 0.02 || p > 0.95 {
		t.Errorf("evidence prob %v escaped clamp", p)
	}
}

func TestPlausibilityMonotoneInEvidence(t *testing.T) {
	// More supporting evidence must never lower the noisy-or.
	s := kb.NewStore(0)
	prev := 0.0
	m := Train(s, func(x, y string) (bool, bool) { return false, false })
	for i := 1; i <= 8; i++ {
		s.Add("x", "y", 1)
		s.AddEvidence("x", "y", kb.Evidence{Pattern: 1, PageScore: 0.5, ListLen: 2, Pos: 1})
		p := m.Plausibility("x", "y")
		if p < prev {
			t.Fatalf("plausibility decreased with evidence: %v -> %v", prev, p)
		}
		prev = p
	}
	if prev <= 0.9 {
		t.Errorf("eight sightings only reach %v", prev)
	}
}
