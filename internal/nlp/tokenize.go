// Package nlp provides the lightweight natural-language substrate that the
// Probase extraction pipeline depends on: tokenisation, English
// plural/singular morphology, and noun-phrase heuristics.
//
// The paper's extractor does not use a full parser; it relies on pattern
// keywords, comma structure, plural detection for candidate super-concepts,
// and capitalisation for proper nouns. This package implements exactly that
// surface machinery.
package nlp

import "strings"

// Token is a single word or punctuation mark with its original spelling.
type Token struct {
	Text  string
	Punct bool // true when the token is punctuation (comma, period, ...)
}

// Tokenize splits a sentence into word and punctuation tokens. Commas and
// sentence-final punctuation become their own tokens; apostrophes and
// hyphens stay inside words so that possessives and compounds survive.
func Tokenize(s string) []Token {
	var toks []Token
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, Token{Text: cur.String()})
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			flush()
		case r == ',' || r == '.' || r == ';' || r == ':' || r == '?' || r == '!' || r == '(' || r == ')' || r == '"':
			flush()
			toks = append(toks, Token{Text: string(r), Punct: true})
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}

// Words returns only the non-punctuation token texts.
func Words(toks []Token) []string {
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if !t.Punct {
			out = append(out, t.Text)
		}
	}
	return out
}

// Normalize lower-cases a phrase and collapses interior whitespace. It is
// the canonical form used for keys in the knowledge store, except that
// proper nouns keep their case (callers decide via IsProperNounPhrase).
func Normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// CollapseSpaces trims and collapses interior whitespace without folding
// case. Instance surface forms keep their capitalisation.
func CollapseSpaces(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// SplitList splits a comma-separated list into trimmed elements, dropping
// empties. It is the first-stage sub-concept splitter of Section 2.3.1.
func SplitList(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ContainsDelimiterWord reports whether the phrase contains a bare "and" or
// "or" — the well-formedness check of Section 2.3.3 (a candidate kept under
// Observation 1 must not itself contain list delimiters).
func ContainsDelimiterWord(s string) bool {
	for _, w := range strings.Fields(strings.ToLower(s)) {
		if w == "and" || w == "or" {
			return true
		}
	}
	return false
}
