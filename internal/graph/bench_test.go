package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// benchGraph builds a layered DAG: 50 roots -> 500 mid concepts -> 5000
// leaves, roughly the shape of a built taxonomy.
func benchGraph() *Store {
	rng := rand.New(rand.NewSource(1))
	s := NewStore()
	var roots, mids, leaves []NodeID
	for i := 0; i < 50; i++ {
		roots = append(roots, s.Intern(fmt.Sprintf("root%d", i)))
	}
	for i := 0; i < 500; i++ {
		mids = append(mids, s.Intern(fmt.Sprintf("mid%d", i)))
	}
	for i := 0; i < 5000; i++ {
		leaves = append(leaves, s.Intern(fmt.Sprintf("leaf%d", i)))
	}
	for _, m := range mids {
		s.AddEdge(roots[rng.Intn(len(roots))], m, int64(rng.Intn(20)+1), rng.Float64())
	}
	for _, l := range leaves {
		s.AddEdge(mids[rng.Intn(len(mids))], l, int64(rng.Intn(20)+1), rng.Float64())
		if rng.Intn(4) == 0 {
			s.AddEdge(roots[rng.Intn(len(roots))], l, 1, rng.Float64())
		}
	}
	return s
}

func BenchmarkDescendants(b *testing.B) {
	s := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Descendants(NodeID(i % 50))
	}
}

func BenchmarkTopoLevels(b *testing.B) {
	s := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TopoLevels(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSave(b *testing.B) {
	s := benchGraph()
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := s.Save(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkLoad(b *testing.B) {
	s := benchGraph()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGraphLarge is benchGraph scaled towards a realistic taxonomy:
// 200 roots -> 5000 mid concepts -> 100k leaves. At this size the
// working set no longer fits in L1/L2, which is the regime the frozen
// CSR layout is built for.
func benchGraphLarge() *Store {
	rng := rand.New(rand.NewSource(3))
	s := NewStore()
	var roots, mids []NodeID
	for i := 0; i < 200; i++ {
		roots = append(roots, s.Intern(fmt.Sprintf("root%d", i)))
	}
	for i := 0; i < 5000; i++ {
		mids = append(mids, s.Intern(fmt.Sprintf("mid%d", i)))
	}
	for _, m := range mids {
		s.AddEdge(roots[rng.Intn(len(roots))], m, int64(rng.Intn(20)+1), rng.Float64())
	}
	for i := 0; i < 100000; i++ {
		l := s.Intern(fmt.Sprintf("leaf%d", i))
		s.AddEdge(mids[rng.Intn(len(mids))], l, int64(rng.Intn(20)+1), rng.Float64())
		if rng.Intn(4) == 0 {
			s.AddEdge(roots[rng.Intn(len(roots))], l, 1, rng.Float64())
		}
	}
	return s
}

// BenchmarkBuilderLookup / BenchmarkFrozenLookup compare the label
// lookup of the two storage backends over the same label mix.
func BenchmarkBuilderLookup(b *testing.B) {
	s := benchGraphLarge()
	labels := lookupMix(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Lookup(labels[i%len(labels)])
	}
}

func BenchmarkFrozenLookup(b *testing.B) {
	f := benchGraphLarge().Freeze()
	labels := lookupMix(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Lookup(labels[i%len(labels)])
	}
}

// lookupMix samples present labels plus a few misses, the shape of
// query-time lookups.
func lookupMix(g Reader) []string {
	rng := rand.New(rand.NewSource(2))
	labels := make([]string, 0, 1024)
	for i := 0; i < 1024; i++ {
		if i%8 == 7 {
			labels = append(labels, fmt.Sprintf("miss%d", i))
			continue
		}
		labels = append(labels, g.Label(NodeID(rng.Intn(g.NumNodes()))))
	}
	return labels
}

// BenchmarkBuilderDescendants / BenchmarkFrozenDescendants compare the
// closure traversal of the two backends from the wide roots.
func BenchmarkBuilderDescendants(b *testing.B) {
	s := benchGraphLarge()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Descendants(NodeID(i % 200))
	}
}

func BenchmarkFrozenDescendants(b *testing.B) {
	f := benchGraphLarge().Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Descendants(NodeID(i % 200))
	}
}

// BenchmarkLoadV1 / BenchmarkLoadV2 compare snapshot load of the two
// formats through the same LoadFrozen entry point (v1 pays interning,
// per-edge sorted inserts and a freeze; v2 is a sequential array read).
func BenchmarkLoadV1(b *testing.B) {
	benchmarkLoadVersion(b, 1)
}

func BenchmarkLoadV2(b *testing.B) {
	benchmarkLoadVersion(b, 2)
}

func benchmarkLoadVersion(b *testing.B, version int) {
	s := benchGraph()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s, version); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadFrozen(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadMapped measures the zero-copy path on the same v2 bytes
// BenchmarkLoadV2 decodes: parseV3 validates the header and checksum
// and points the CSR arrays and label arena into the buffer instead of
// copying them out.
func BenchmarkLoadMapped(b *testing.B) {
	s := benchGraph()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s, 2); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := LoadMapped(data, nil)
		if err != nil {
			b.Fatal(err)
		}
		g.Close()
	}
}

// BenchmarkNewBuilderFrom measures the thaw cost a delta build pays to
// turn the previous frozen taxonomy back into a mutable Builder before
// extending it.
func BenchmarkNewBuilderFrom(b *testing.B) {
	fz := benchGraph().Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := NewBuilderFrom(fz); g.NumNodes() != fz.NumNodes() {
			b.Fatal("thaw lost nodes")
		}
	}
}

// BenchmarkThawRefreeze is the full round trip: thaw, mutate nothing,
// refreeze — the fixed overhead of an incremental build that touches a
// vanishing fraction of the graph.
func BenchmarkThawRefreeze(b *testing.B) {
	fz := benchGraph().Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := NewBuilderFrom(fz).Freeze(); g.NumEdges() != fz.NumEdges() {
			b.Fatal("round trip lost edges")
		}
	}
}
