package taxonomy

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/extraction"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// State is the outcome of Algorithm 2's merge stages in a form that can
// be persisted and partially reused: per root label, the sense clusters
// that survive horizontal merging and fragment adoption. Vertical links
// are *not* stored — they are a pure function of the cluster child sets
// (Property 3 reads only merge-frozen state), so Assemble recomputes
// them. That split is what makes delta builds cheap: a label whose group
// records did not change keeps its LabelState verbatim, and only the
// cross-label link computation runs over the full cluster set.
type State struct {
	Labels []LabelState // sorted by Label
}

// LabelState is the merge outcome for one root label.
type LabelState struct {
	Label     string
	Locals    int // input local taxonomies (sentences) for this label
	Hops      int // horizontal fixpoint merges (adoption excluded)
	Adoptions int
	Clusters  []Cluster // sorted by mass desc, Ord asc
}

// Cluster is one sense cluster: the merged child multiset plus the global
// corpus order of its representative local. Ord reproduces the engine-id
// tiebreak of the monolithic build: engine ids follow the corpus-ordered
// groups slice, so ascending Ord within a label is exactly ascending
// engine id, keeping sense numbering and link-target order byte-stable
// across full and delta builds.
type Cluster struct {
	Ord      int
	Children map[string]int64
}

// Mass is the total child occurrence count of the cluster.
func (c Cluster) Mass() int64 {
	var m int64
	for _, v := range c.Children {
		m += v
	}
	return m
}

func (c Cluster) childLabels() []string {
	out := make([]string, 0, len(c.Children))
	for k := range c.Children {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// labelLocals is one label's local taxonomies in corpus order, paired
// with each local's global order key.
type labelLocals struct {
	label  string
	locals []*Local
	ords   []int
}

// collectLabels groups the extraction output per root label, preserving
// corpus order within each label. A group without an Order (hand-built
// inputs) falls back to its slice position, which preserves relative
// order — the only property the merge replay needs.
func collectLabels(groups []extraction.Group) []labelLocals {
	idx := make(map[string]int)
	var out []labelLocals
	for i, g := range groups {
		if g.Super == "" || len(g.Subs) == 0 {
			continue
		}
		ord := g.Order
		if ord == 0 {
			ord = i + 1
		}
		j, ok := idx[g.Super]
		if !ok {
			j = len(out)
			idx[g.Super] = j
			out = append(out, labelLocals{label: g.Super})
		}
		out[j].locals = append(out[j].locals, NewLocal(g.Super, g.Subs))
		out[j].ords = append(out[j].ords, ord)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].label < out[b].label })
	return out
}

// mergeLabel runs the horizontal fixpoint and fragment adoption for one
// label in isolation. Labels merge independently (Section 3.4), and the
// per-label replay is positionally isomorphic to the monolithic engine
// restricted to the label's ids, so the resulting clusters — including
// which local ends up as each cluster's representative — are identical.
func mergeLabel(lg labelLocals, cfg Config) LabelState {
	eng := newEngine(lg.locals, cfg.Sim)
	ids := make([]int, len(lg.locals))
	for i := range ids {
		ids[i] = i
	}
	hops := eng.horizontalFixpoint(ids)
	adoptions := 0
	if !cfg.DisableAdoption {
		adoptions = eng.adoptFragments()
	}
	ls := LabelState{Label: lg.label, Locals: len(lg.locals), Hops: hops, Adoptions: adoptions}
	for _, id := range eng.alive() {
		ls.Clusters = append(ls.Clusters, Cluster{Ord: lg.ords[id], Children: eng.nodes[id].Children})
	}
	sortClusters(ls.Clusters)
	return ls
}

func sortClusters(cs []Cluster) {
	sort.Slice(cs, func(a, b int) bool {
		ma, mb := cs[a].Mass(), cs[b].Mass()
		if ma != mb {
			return ma > mb
		}
		return cs[a].Ord < cs[b].Ord
	})
}

func mergeLabels(byLabel []labelLocals, cfg Config, rep obs.StageReporter) *State {
	rep.StageStart(obs.StageTaxonomyHorizontal)
	start := time.Now()
	states := make([]LabelState, len(byLabel))
	_ = parallel.ForEach(context.Background(), cfg.Workers, len(byLabel), func(i int) error {
		states[i] = mergeLabel(byLabel[i], cfg)
		return nil
	})
	rep.Count(obs.StageTaxonomyHorizontal, "workers", int64(cfg.Workers))
	rep.StageEnd(obs.StageTaxonomyHorizontal, time.Since(start))
	return &State{Labels: states}
}

// Merge runs the horizontal merge stage (plus fragment adoption) over the
// extraction groups and returns the reusable per-label state.
func Merge(groups []extraction.Group, cfg Config) *State {
	cfg = cfg.withDefaults()
	return mergeLabels(collectLabels(groups), cfg, obs.ReporterOrNop(cfg.Reporter))
}

// MergeDelta is Merge with reuse: labels not named in dirtyRoots keep
// their LabelState from prev verbatim; dirty and new labels are rebuilt
// from their (complete) group record lists. Soundness rests on the
// extraction contract: a label outside DirtyRoots has an identical
// per-label group record list in both builds (the checkpoint's per-root
// group-list hashes make the dirty set exact), so its merge replay would
// reproduce the same clusters. As a defensive guard, a "clean" label
// whose local count changed anyway is rebuilt rather than trusted.
func MergeDelta(prev *State, groups []extraction.Group, dirtyRoots []string, cfg Config) *State {
	cfg = cfg.withDefaults()
	rep := obs.ReporterOrNop(cfg.Reporter)
	byLabel := collectLabels(groups)
	dirty := make(map[string]bool, len(dirtyRoots))
	for _, r := range dirtyRoots {
		dirty[r] = true
	}
	prevByLabel := make(map[string]*LabelState, len(prev.Labels))
	for i := range prev.Labels {
		prevByLabel[prev.Labels[i].Label] = &prev.Labels[i]
	}

	rep.StageStart(obs.StageTaxonomyHorizontal)
	start := time.Now()
	states := make([]LabelState, len(byLabel))
	rebuild := make([]bool, len(byLabel))
	var reusedClusters, dirtyLabels int64
	for i, lg := range byLabel {
		ps := prevByLabel[lg.label]
		if ps != nil && !dirty[lg.label] && ps.Locals == len(lg.locals) {
			states[i] = *ps
			reusedClusters += int64(len(ps.Clusters))
			continue
		}
		rebuild[i] = true
		dirtyLabels++
	}
	_ = parallel.ForEach(context.Background(), cfg.Workers, len(byLabel), func(i int) error {
		if rebuild[i] {
			states[i] = mergeLabel(byLabel[i], cfg)
		}
		return nil
	})
	rep.Count(obs.StageTaxonomyHorizontal, "workers", int64(cfg.Workers))
	rep.Count(obs.StageTaxonomy, "dirty_labels", dirtyLabels)
	rep.Count(obs.StageTaxonomy, "reused_clusters", reusedClusters)
	rep.StageEnd(obs.StageTaxonomyHorizontal, time.Since(start))
	return &State{Labels: states}
}

// Assemble runs the vertical stage and DAG assembly over a merge state.
// Build(groups, cfg) ≡ Assemble(Merge(groups, cfg), cfg).
func Assemble(state *State, cfg Config) *Result {
	cfg = cfg.withDefaults()
	return assembleState(state, cfg, obs.ReporterOrNop(cfg.Reporter))
}

// flatLink is one vertical link discovered for a cluster: its child slot
// label and the flat index of the linked cluster.
type flatLink struct {
	child  string
	target int
}

func assembleState(state *State, cfg Config, rep obs.StageReporter) *Result {
	// Flatten the clusters; labels are sorted in State and clusters keep
	// their stored (mass desc, Ord asc) order, so flat indexes are
	// deterministic.
	type flatCluster struct {
		label string
		c     *Cluster
	}
	var flat []flatCluster
	byLabel := make(map[string][]int)
	for li := range state.Labels {
		ls := &state.Labels[li]
		for ci := range ls.Clusters {
			byLabel[ls.Label] = append(byLabel[ls.Label], len(flat))
			flat = append(flat, flatCluster{label: ls.Label, c: &ls.Clusters[ci]})
		}
	}

	// Vertical stage: links are a pure function of the merge-frozen child
	// sets (Property 3), computed per cluster in parallel. A cluster's
	// child slot y links to every cluster of label y with similar
	// children, excluding the cluster itself.
	rep.StageStart(obs.StageTaxonomyVertical)
	stageStart := time.Now()
	linkSlots := make([][]flatLink, len(flat))
	_ = parallel.ForEach(context.Background(), cfg.Workers, len(flat), func(a int) error {
		var links []flatLink
		for _, y := range flat[a].c.childLabels() {
			for _, b := range byLabel[y] {
				if a == b {
					continue
				}
				if cfg.Sim.Similar(flat[a].c.Children, flat[b].c.Children) {
					links = append(links, flatLink{child: y, target: b})
				}
			}
		}
		linkSlots[a] = links
		return nil
	})
	vops := 0
	for _, links := range linkSlots {
		vops += len(links)
	}
	rep.Count(obs.StageTaxonomyVertical, "workers", int64(cfg.Workers))
	rep.StageEnd(obs.StageTaxonomyVertical, time.Since(stageStart))

	rep.StageStart(obs.StageTaxonomyAssemble)
	stageStart = time.Now()
	res := &Result{
		Graph:  graph.NewStore(),
		Senses: make(map[string][]string),
		State:  state,
		Stats:  BuildStats{VerticalOps: vops},
	}
	for _, ls := range state.Labels {
		res.Stats.Locals += ls.Locals
		res.Stats.HorizontalOps += ls.Hops
		res.Stats.Adoptions += ls.Adoptions
	}

	// Sense naming with optional fragment dropping, then node interning —
	// same order as the monolithic build, so graph node ids match.
	senseName := make([]string, len(flat))
	kept := make(map[string][]int, len(state.Labels))
	for _, ls := range state.Labels {
		ids := byLabel[ls.Label]
		if cfg.MinSenseEvidence > 0 && len(ids) > 1 {
			k := ids[:1]
			for _, id := range ids[1:] {
				if int(flat[id].c.Mass()) >= cfg.MinSenseEvidence {
					k = append(k, id)
				} else {
					res.Stats.DroppedClusters++
				}
			}
			ids = k
		}
		names := make([]string, len(ids))
		for i, id := range ids {
			senseName[id] = SenseLabel(ls.Label, i, len(ids))
			names[i] = senseName[id]
		}
		kept[ls.Label] = ids
		res.Senses[ls.Label] = names
		res.Stats.Senses += len(ids)
		if len(ids) > 1 {
			res.Stats.MultiSense++
		}
	}
	for _, ls := range state.Labels {
		for _, id := range kept[ls.Label] {
			res.Graph.Intern(senseName[id])
		}
	}

	// Edge emission: a child slot resolves to its linked surviving sense
	// clusters in ascending Ord (the monolithic build's ascending engine
	// id); an unlinked slot becomes the plain label node.
	type pendingEdge struct {
		from, to string
		count    int64
	}
	var edges []pendingEdge
	for _, ls := range state.Labels {
		for _, id := range kept[ls.Label] {
			from := senseName[id]
			targetsBy := make(map[string][]int)
			for _, l := range linkSlots[id] {
				if senseName[l.target] != "" {
					targetsBy[l.child] = append(targetsBy[l.child], l.target)
				}
			}
			for _, y := range flat[id].c.childLabels() {
				n := flat[id].c.Children[y]
				if targets := targetsBy[y]; len(targets) > 0 {
					sort.Slice(targets, func(a, b int) bool {
						return flat[targets[a]].c.Ord < flat[targets[b]].c.Ord
					})
					for _, tid := range targets {
						edges = append(edges, pendingEdge{from, senseName[tid], n})
					}
					continue
				}
				edges = append(edges, pendingEdge{from, y, n})
			}
		}
	}
	// Deterministic, heaviest-first edge insertion with cycle refusal.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].count != edges[j].count {
			return edges[i].count > edges[j].count
		}
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		from := res.Graph.Intern(e.from)
		to := res.Graph.Intern(e.to)
		if from == to {
			res.Stats.SkippedCycles++
			continue
		}
		if res.Graph.HasPath(to, from) {
			res.Stats.SkippedCycles++
			continue
		}
		res.Graph.AddEdge(from, to, e.count, 0)
	}
	rep.StageEnd(obs.StageTaxonomyAssemble, time.Since(stageStart))
	for counter, v := range map[string]int64{
		"locals":           int64(res.Stats.Locals),
		"horizontal_ops":   int64(res.Stats.HorizontalOps),
		"vertical_ops":     int64(res.Stats.VerticalOps),
		"adoptions":        int64(res.Stats.Adoptions),
		"senses":           int64(res.Stats.Senses),
		"multi_sense":      int64(res.Stats.MultiSense),
		"skipped_cycles":   int64(res.Stats.SkippedCycles),
		"dropped_clusters": int64(res.Stats.DroppedClusters),
	} {
		rep.Count(obs.StageTaxonomy, counter, v)
	}
	return res
}

// ErrBadState reports a structurally invalid taxonomy state.
var ErrBadState = errors.New("taxonomy: bad state")

// EncodeState writes the merge state in the binary layout embedded in
// full snapshots.
func EncodeState(w io.Writer, s *State) error {
	bw := bufio.NewWriter(w)
	putUv := func(v uint64) {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	putStr := func(str string) {
		putUv(uint64(len(str)))
		bw.WriteString(str)
	}
	putUv(uint64(len(s.Labels)))
	for _, ls := range s.Labels {
		putStr(ls.Label)
		putUv(uint64(ls.Locals))
		putUv(uint64(ls.Hops))
		putUv(uint64(ls.Adoptions))
		putUv(uint64(len(ls.Clusters)))
		for _, c := range ls.Clusters {
			putUv(uint64(c.Ord))
			putUv(uint64(len(c.Children)))
			for _, k := range c.childLabels() {
				putStr(k)
				putUv(uint64(c.Children[k]))
			}
		}
	}
	return bw.Flush()
}

// DecodeState reads a state written by EncodeState.
func DecodeState(r io.Reader) (*State, error) {
	br := bufio.NewReader(r)
	getUv := func(max uint64, what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil || v > max {
			return 0, fmt.Errorf("%w: %s", ErrBadState, what)
		}
		return v, nil
	}
	getStr := func() (string, error) {
		n, err := getUv(1<<20, "string length")
		if err != nil {
			return "", err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", fmt.Errorf("%w: string bytes: %v", ErrBadState, err)
		}
		return string(buf), nil
	}
	nlabels, err := getUv(1<<28, "label count")
	if err != nil {
		return nil, err
	}
	s := &State{}
	if nlabels > 0 {
		s.Labels = make([]LabelState, 0, minUv(nlabels, 1<<16))
	}
	for i := uint64(0); i < nlabels; i++ {
		var ls LabelState
		if ls.Label, err = getStr(); err != nil {
			return nil, err
		}
		for _, dst := range []*int{&ls.Locals, &ls.Hops, &ls.Adoptions} {
			v, err := getUv(1<<40, "label counter")
			if err != nil {
				return nil, err
			}
			*dst = int(v)
		}
		nclusters, err := getUv(1<<24, "cluster count")
		if err != nil {
			return nil, err
		}
		if nclusters > 0 {
			ls.Clusters = make([]Cluster, 0, minUv(nclusters, 1<<12))
		}
		for j := uint64(0); j < nclusters; j++ {
			var c Cluster
			ord, err := getUv(1<<40, "cluster ord")
			if err != nil {
				return nil, err
			}
			c.Ord = int(ord)
			nchildren, err := getUv(1<<24, "child count")
			if err != nil {
				return nil, err
			}
			c.Children = make(map[string]int64, minUv(nchildren, 1<<12))
			for k := uint64(0); k < nchildren; k++ {
				key, err := getStr()
				if err != nil {
					return nil, err
				}
				cnt, err := getUv(1<<40, "child mass")
				if err != nil {
					return nil, err
				}
				c.Children[key] = int64(cnt)
			}
			ls.Clusters = append(ls.Clusters, c)
		}
		s.Labels = append(s.Labels, ls)
	}
	return s, nil
}

func minUv(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// stateFingerprint canonically serialises the clusters and the vertical
// links Assemble would derive — the same format engine.fingerprint uses,
// so the per-label replay can be checked against the monolithic engine.
func stateFingerprint(s *State, sim Similarity) string {
	type fc struct {
		label string
		c     *Cluster
	}
	var flat []fc
	byLabel := make(map[string][]int)
	for li := range s.Labels {
		ls := &s.Labels[li]
		for ci := range ls.Clusters {
			byLabel[ls.Label] = append(byLabel[ls.Label], len(flat))
			flat = append(flat, fc{ls.Label, &ls.Clusters[ci]})
		}
	}
	sig := make([]string, len(flat))
	for i, f := range flat {
		var b bytes.Buffer
		b.WriteString(f.label)
		b.WriteString("::")
		for _, c := range f.c.childLabels() {
			fmt.Fprintf(&b, "%s=%d;", c, f.c.Children[c])
		}
		sig[i] = b.String()
	}
	clusters := append([]string(nil), sig...)
	sort.Strings(clusters)
	var links []string
	for a, f := range flat {
		for _, y := range f.c.childLabels() {
			for _, b := range byLabel[y] {
				if a != b && sim.Similar(f.c.Children, flat[b].c.Children) {
					links = append(links, sig[a]+" -> "+sig[b])
				}
			}
		}
	}
	sort.Strings(links)
	return joinLines(clusters) + "\n#links\n" + joinLines(links)
}

func joinLines(ss []string) string {
	var b bytes.Buffer
	for i, s := range ss {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(s)
	}
	return b.String()
}
