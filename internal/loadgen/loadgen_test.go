package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
	"repro/internal/server"
)

var (
	pbOnce sync.Once
	pbVal  *core.Probase
	pbErr  error
)

// testProbase builds one small taxonomy for every loadgen test.
func testProbase(t testing.TB) *core.Probase {
	t.Helper()
	pbOnce.Do(func() {
		w := corpus.DefaultWorld(1)
		c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: 4000, Seed: 11}).Generate()
		inputs := make([]extraction.Input, len(c.Sentences))
		for i, s := range c.Sentences {
			inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
		}
		pbVal, pbErr = core.Build(inputs, core.Config{})
	})
	if pbErr != nil {
		t.Fatal(pbErr)
	}
	return pbVal
}

// testServer serves the test taxonomy in-process.
func testServer(t testing.TB) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(testProbase(t), server.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDeterministicReplay pins the PR-4 convention to the request
// plan: same seed and config produce an identical URI stream
// regardless of worker count, witnessed by the stream fingerprint.
func TestDeterministicReplay(t *testing.T) {
	ts := testServer(t)
	base := Config{
		Target:      ts.URL,
		MaxRequests: 400,
		Duration:    30 * time.Second, // bound by MaxRequests, not time
		Seed:        11,
		Queries:     500,
	}

	cfg1 := base
	cfg1.Workers = 1
	cfg8 := base
	cfg8.Workers = 8

	r1 := mustRun(t, cfg1)
	r8 := mustRun(t, cfg8)
	if r1.Generated != 400 || r8.Generated != 400 {
		t.Fatalf("generated %d and %d requests, want 400", r1.Generated, r8.Generated)
	}
	if r1.Fingerprint == "" {
		t.Fatal("empty fingerprint")
	}
	if r1.Fingerprint != r8.Fingerprint {
		t.Errorf("workers=1 fingerprint %s != workers=8 fingerprint %s",
			r1.Fingerprint, r8.Fingerprint)
	}
	// Same config again: exact replay.
	if r1b := mustRun(t, cfg1); r1b.Fingerprint != r1.Fingerprint {
		t.Error("same seed and config did not replay the same stream")
	}
	// A different seed must plan a different stream.
	diff := cfg1
	diff.Seed = 12
	if rd := mustRun(t, diff); rd.Fingerprint == r1.Fingerprint {
		t.Error("different seed produced an identical stream")
	}
}

// TestGeneratorStreamIsWorkerIndependent exercises the plan without a
// network: two generators with the same inputs emit identical URIs.
func TestGeneratorStreamIsWorkerIndependent(t *testing.T) {
	pool := []string{"companies", "best cities", "microsoft", "weather"}
	g1 := newRequestGen(7, DefaultMix(), pool)
	g2 := newRequestGen(7, DefaultMix(), pool)
	for i := 0; i < 500; i++ {
		a, b := g1.next(), g2.next()
		if a != b {
			t.Fatalf("request %d diverged: %+v vs %+v", i, a, b)
		}
	}
	if g1.fingerprint() != g2.fingerprint() {
		t.Error("fingerprints diverged on identical streams")
	}
}

// TestEndToEnd runs the generator against an in-process server and
// checks the whole contract: zero errors, every endpoint hit in its
// configured proportion, a schema-valid probase-bench/v1 report, and a
// live SLO gate.
func TestEndToEnd(t *testing.T) {
	ts := testServer(t)
	var progress bytes.Buffer
	mix, err := ParseMix("instances=30,concepts=30,typicality=10,plausibility=10,conceptualize=15,healthz=5")
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, Config{
		Target:         ts.URL,
		Workers:        4,
		MaxRequests:    1500,
		Duration:       60 * time.Second,
		ReportInterval: 50 * time.Millisecond,
		Seed:           11,
		Queries:        800,
		Mix:            mix,
		TraceSample:    0.25,
		Progress:       &progress,
	})

	if res.Total.Requests != 1500 {
		t.Fatalf("completed %d requests, want 1500", res.Total.Requests)
	}
	if res.Total.Errors != 0 || res.Total.Timeouts != 0 {
		t.Fatalf("errors=%d timeouts=%d, want zero", res.Total.Errors, res.Total.Timeouts)
	}
	if res.Total.Latency.Count() == 0 || res.Total.Latency.Quantile(0.99) <= 0 {
		t.Error("no latency recorded")
	}

	// Every endpoint saw traffic, in proportion. With n=1500 the
	// binomial sd for p=0.30 is ~1.2%, so ±5pp is a >4σ tolerance.
	for _, ep := range Endpoints {
		s := res.Endpoints[ep]
		if s.Requests == 0 {
			t.Errorf("endpoint %s saw no traffic", ep)
			continue
		}
		got := float64(s.Requests) / float64(res.Total.Requests)
		want := mix.Share(ep)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("endpoint %s share %.3f, configured %.3f", ep, got, want)
		}
	}

	// The JSON report validates against the probase-bench/v1 schema.
	report := res.Report()
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := benchfmt.ValidateBytes("e2e", raw); err != nil {
		t.Errorf("report does not validate: %v", err)
	}
	rr := res.ReportResult()
	if rr.Total.P50MS <= 0 || rr.Total.P99MS < rr.Total.P50MS {
		t.Errorf("implausible quantiles: %+v", rr.Total)
	}
	if len(rr.Endpoints) != len(Endpoints) {
		t.Errorf("report has %d endpoint entries", len(rr.Endpoints))
	}

	// Client-side tracing surfaced slow-request trace IDs.
	if len(res.Slowest) == 0 {
		t.Error("no slowest-request samples despite TraceSample > 0")
	}
	for _, s := range res.Slowest {
		if s.TraceID == "" || s.URI == "" {
			t.Errorf("slow request missing identity: %+v", s)
		}
	}

	// Interval progress lines were emitted.
	if !strings.Contains(progress.String(), "requests=") {
		t.Errorf("no interval progress lines; got %q", progress.String())
	}

	// The SLO gate is live in both directions: a generous threshold
	// passes, an absurdly tight one fails on the same report.
	pass := SLO{P99: time.Minute, MaxErrorRate: 0, MinRequests: 100}
	if err := pass.CheckResult(res); err != nil {
		t.Errorf("generous SLO failed: %v", err)
	}
	if err := pass.CheckReport("e2e", raw); err != nil {
		t.Errorf("generous SLO failed on marshalled report: %v", err)
	}
	tight := SLO{P99: time.Nanosecond, MaxErrorRate: -1}
	if err := tight.CheckReport("e2e", raw); err == nil {
		t.Error("1ns p99 SLO passed — gate is not live")
	} else if !strings.Contains(err.Error(), "p99") {
		t.Errorf("violation does not name the gate: %v", err)
	}
	if err := (SLO{MinRequests: 1 << 40}).CheckResult(res); err == nil {
		t.Error("min-requests gate not live")
	}
}

// TestErrorAccounting points the generator at a server that fails and
// checks 5xx, 4xx, and timeouts land in the right columns.
func TestErrorAccounting(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "not found", http.StatusNotFound)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	mix, err := ParseMix("instances=50,healthz=50")
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, Config{
		Target: ts.URL, Workers: 2, MaxRequests: 200,
		Duration: 30 * time.Second, Seed: 3, Queries: 100, Mix: mix,
	})
	if res.Endpoints["healthz"].Errors != res.Endpoints["healthz"].Requests {
		t.Errorf("5xx not counted as errors: %+v", res.Endpoints["healthz"])
	}
	if res.Endpoints["instances"].HTTP4xx != res.Endpoints["instances"].Requests {
		t.Errorf("4xx not counted separately: %+v", res.Endpoints["instances"])
	}
	if res.Endpoints["instances"].Errors != 0 {
		t.Error("4xx responses were charged as errors")
	}
	if res.Total.ErrorRate() <= 0 {
		t.Error("error rate not reflecting 5xx responses")
	}
	if err := (SLO{MaxErrorRate: 0}).CheckResult(res); err == nil {
		t.Error("error-rate gate passed a failing server")
	}
}

// TestTimeoutAccounting checks a stalled server registers timeouts,
// not transport errors, and the deadline bounds recorded latency.
func TestTimeoutAccounting(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer ts.Close()
	defer once.Do(func() { close(release) })

	mix, err := ParseMix("healthz=1")
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, Config{
		Target: ts.URL, Workers: 2, MaxRequests: 4,
		Duration: 30 * time.Second, Seed: 3, Queries: 50, Mix: mix,
		Timeout: 100 * time.Millisecond,
	})
	once.Do(func() { close(release) })
	if res.Total.Timeouts != res.Total.Requests || res.Total.Requests == 0 {
		t.Fatalf("timeouts=%d of %d requests", res.Total.Timeouts, res.Total.Requests)
	}
	if res.Total.Errors != 0 {
		t.Error("timeouts double-counted as errors")
	}
	if min := res.Total.Latency.Min(); min < (90 * time.Millisecond).Nanoseconds() {
		t.Errorf("timed-out latency %v under the deadline", time.Duration(min))
	}
}

// TestPacedRunCompletes exercises the open-loop pacing path.
func TestPacedRunCompletes(t *testing.T) {
	ts := testServer(t)
	res := mustRun(t, Config{
		Target: ts.URL, Workers: 2, MaxRequests: 60,
		Duration: 30 * time.Second, Seed: 5, Queries: 200,
		Interval: 2 * time.Millisecond,
	})
	if res.Total.Requests != 60 {
		t.Fatalf("paced run completed %d requests", res.Total.Requests)
	}
	if res.Total.Errors != 0 || res.Total.Timeouts != 0 {
		t.Errorf("paced run errors=%d timeouts=%d", res.Total.Errors, res.Total.Timeouts)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("missing target accepted")
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("instances=3, healthz=1")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Share("instances"); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("instances share = %v", got)
	}
	if got := m.Share("concepts"); got != 0 {
		t.Errorf("unlisted endpoint share = %v", got)
	}
	if m.String() != "instances=3,healthz=1" {
		t.Errorf("String() = %q", m.String())
	}
	for _, bad := range []string{"bogus=1", "instances", "instances=-1", "instances=x", "", "instances=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	// The default spec parses and sums to 1.
	var sum float64
	for _, share := range DefaultMix().Shares() {
		sum += share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("default mix shares sum to %v", sum)
	}
}
