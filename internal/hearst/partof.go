package hearst

import (
	"strings"

	"repro/internal/nlp"
)

// PartOf is a harvested part-whole claim: each Part is a component of
// Whole. Section 4.1 uses such claims as *negative* evidence against the
// corresponding isA reading ("B is comprised of A, C, ..." lowers the
// plausibility that A isA B).
type PartOf struct {
	Whole string
	Parts []string
	Raw   string
}

// partOfKeywords are the patterns that signal composition. Each maps to
// whether the whole precedes the parts.
var partOfKeywords = []struct {
	kw string
}{
	{" are comprised of "},
	{" is comprised of "},
	{" consist of "},
	{" consists of "},
	{" are made up of "},
	{" is made up of "},
}

// ParsePartOf matches composition sentences such as "trees are comprised
// of branches, leaves and roots".
func ParsePartOf(sentence string) (PartOf, bool) {
	lower := strings.ToLower(sentence)
	for _, p := range partOfKeywords {
		i := strings.Index(lower, p.kw)
		if i < 0 {
			continue
		}
		whole := nlp.TrailingNounPhrase(strings.TrimRight(sentence[:i], " ,"))
		if whole == "" {
			return PartOf{}, false
		}
		after := cutAtClauseEnd(sentence[i+len(p.kw):])
		var parts []string
		for _, seg := range forwardSegments(after) {
			if seg.Ambiguous() {
				parts = append(parts, seg.Parts...)
			} else {
				parts = append(parts, seg.Whole)
			}
		}
		if len(parts) == 0 {
			return PartOf{}, false
		}
		return PartOf{Whole: whole, Parts: parts, Raw: sentence}, true
	}
	return PartOf{}, false
}
