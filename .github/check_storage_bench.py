#!/usr/bin/env python3
"""Gate a probase-bench storage report (BENCH_storage.json).

Usage: check_storage_bench.py REPORT.json

Identity must hold on any machine. The speed gates compare min-of-reps
timings of competing code paths on the same graph in the same process,
so runner noise largely cancels: the closure traversals and the v2
loader carry 1.6-3x margins, the mmap-vs-copy load gate rides the
systematic cost the copying decoder always pays (allocate + decode the
whole file) on a thinner margin, and the lookup gate allows measurement
jitter around its ~1.1x margin.

Exits non-zero on any violated gate. ci.yml re-runs this script on a
doctored report to prove the gate is live.
"""
import json
import sys

if len(sys.argv) != 2:
    sys.exit(f"usage: {sys.argv[0]} REPORT.json")

report = json.load(open(sys.argv[1]))
exp = next(e for e in report["experiments"] if e["name"] == "storage")
r = exp["result"]

print(
    f"lookup {r['lookup_speedup']:.2f}x, descendants {r['descendants_speedup']:.2f}x, "
    f"haspath {r['haspath_speedup']:.2f}x, load v2 vs v1 {r['load_speedup']:.2f}x, "
    f"load mmap vs copy {r['mmap_load_speedup']:.2f}x (zero_copy={r['mmap_zero_copy']}), "
    f"identical={r['results_identical']}"
)
print(
    f"first query: copy {r['first_query_copy_us']:.0f}us vs mmap {r['first_query_mmap_us']:.0f}us; "
    f"gc pause: copy {r['gc_pause_copy_us']:.0f}us vs mmap {r['gc_pause_mmap_us']:.0f}us; "
    f"heap: copy {r['heap_copy_bytes']} vs mmap {r['heap_mmap_bytes']} bytes"
)

if not r["results_identical"]:
    sys.exit("frozen CSR query results diverge from the mutable builder")
if r["load_speedup"] <= 1.0:
    sys.exit("v2 snapshot load is not faster than v1")
if r["descendants_speedup"] <= 1.0 or r["haspath_speedup"] <= 1.0:
    sys.exit("frozen closure traversals are not faster than the builder")
if r["lookup_speedup"] <= 0.95:
    sys.exit("frozen lookup is slower than the builder beyond noise")
if not r["mmap_zero_copy"]:
    sys.exit("mapped loader fell back to a heap copy on this runner")
if r["mmap_load_speedup"] <= 1.0:
    sys.exit("memory-mapped load is not faster than the copying decode")
if r["heap_mmap_bytes"] >= r["heap_copy_bytes"]:
    sys.exit("mapped graph does not reduce live heap vs the copying load")
