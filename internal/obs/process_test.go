package obs

import (
	"bytes"
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
	"time"
)

// fakeSampler wires a procSampler to a counting read and a manual
// clock, so tests can observe exactly how many stop-the-world reads a
// scrape costs.
func fakeSampler() (*procSampler, *time.Time) {
	now := time.Unix(1000, 0)
	s := &procSampler{
		ttl: time.Second,
		now: func() time.Time { return now },
		readMem: func(ms *runtime.MemStats) {
			ms.HeapAlloc = 42
			ms.HeapObjects = 7
			ms.Sys = 1 << 20
			ms.NumGC = 3
		},
		readPause: func() *metrics.Float64Histogram {
			return &metrics.Float64Histogram{
				Counts:  []uint64{9, 1},
				Buckets: []float64{0, 1e-3, 1e-2},
			}
		},
	}
	return s, &now
}

// TestProcSamplerSharesOneRead is the satellite's core claim: four heap
// gauges scraping through one sampler pay one ReadMemStats, not four.
func TestProcSamplerSharesOneRead(t *testing.T) {
	s, now := fakeSampler()
	for i := 0; i < 4; i++ {
		if got := s.memStats().HeapAlloc; got != 42 {
			t.Fatalf("HeapAlloc = %d", got)
		}
		s.gcPauses()
	}
	if s.reads != 1 {
		t.Errorf("reads = %d, want 1 within a TTL window", s.reads)
	}

	// The next scrape window refreshes exactly once more.
	*now = now.Add(2 * time.Second)
	s.memStats()
	s.gcPauses()
	if s.reads != 2 {
		t.Errorf("reads = %d after TTL expiry, want 2", s.reads)
	}

	// A clock that jumps backwards (wall-clock step) refreshes rather
	// than serving a sample from the future forever.
	*now = now.Add(-time.Hour)
	s.memStats()
	if s.reads != 3 {
		t.Errorf("reads = %d after backwards clock jump, want 3", s.reads)
	}
}

// TestProcessGaugesOneReadPerScrape wires the fake sampler into a real
// registry: a full exposition touches every process gauge yet costs a
// single runtime read.
func TestProcessGaugesOneReadPerScrape(t *testing.T) {
	s, _ := fakeSampler()
	reg := NewRegistry()
	registerProcessGauges(reg, s)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if s.reads != 1 {
		t.Errorf("one scrape cost %d runtime reads, want 1", s.reads)
	}
	out := buf.String()
	for _, want := range []string{
		"probase_process_heap_alloc_bytes 42",
		"probase_process_heap_objects 7",
		"probase_process_gc_cycles_total 3",
		`probase_process_gc_pause_seconds{quantile="0.5"} 0.001`,
		`probase_process_gc_pause_seconds{quantile="0.99"} 0.01`,
		`probase_process_gc_pause_seconds{quantile="1"} 0.01`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{5, 3, 2},
		Buckets: []float64{0, 1, 2, math.Inf(1)},
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.5, 1},   // rank 5 of 10 lands in the first bucket
		{0.6, 2},   // rank 6 crosses into the second
		{0.99, 2},  // rank 10 is in the +Inf bucket: lower bound
		{1.0, 2},   // same open-ended bucket
		{0.001, 1}, // target clamps up to rank 1
	}
	for _, tc := range cases {
		if got := histQuantile(h, tc.q); got != tc.want {
			t.Errorf("histQuantile(q=%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := histQuantile(nil, 0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if got := histQuantile(empty, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

// TestReadGCPauses checks the live runtime publishes the pause metric
// in the kind we expect; if a future runtime changes the kind, the
// KindBad guard must turn that into nil, and this test into a loud
// signal.
func TestReadGCPauses(t *testing.T) {
	runtime.GC()
	h := readGCPauses()
	if h == nil {
		t.Fatalf("runtime does not publish %s as a float64 histogram", gcPauseMetric)
	}
	if len(h.Buckets) != len(h.Counts)+1 {
		t.Errorf("histogram shape: %d buckets, %d counts", len(h.Buckets), len(h.Counts))
	}
	if q := histQuantile(h, 1.0); q < 0 {
		t.Errorf("max pause quantile = %v", q)
	}
}
