package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary snapshot format (little-endian):
//
//	magic   [4]byte  "PBGR"
//	version uvarint  (currently 1)
//	nodes   uvarint
//	labels  nodes x (uvarint len, bytes)
//	edges   uvarint (total count)
//	         per node: uvarint fan-out, then per edge:
//	           uvarint to, uvarint count, float64 bits plausibility
//	crc32   uint32 (IEEE, over everything before it)
const (
	snapshotMagic   = "PBGR"
	snapshotVersion = 1
)

var (
	// ErrBadSnapshot reports a structurally invalid snapshot.
	ErrBadSnapshot = errors.New("graph: bad snapshot")
	// ErrChecksum reports snapshot corruption.
	ErrChecksum = errors.New("graph: snapshot checksum mismatch")
)

type crcWriter struct {
	w   *bufio.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	cw.n += int64(len(p))
	return cw.w.Write(p)
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// Save writes a checksummed v1 binary snapshot of the store, readable
// by both Load and LoadFrozen.
func (b *Builder) Save(w io.Writer) error { return saveV1(w, b) }

// saveV1 writes the adjacency-list "PBGR" format from any Reader.
func saveV1(w io.Writer, g Reader) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write([]byte(snapshotMagic)); err != nil {
		return err
	}
	if err := writeUvarint(cw, snapshotVersion); err != nil {
		return err
	}
	n := g.NumNodes()
	if err := writeUvarint(cw, uint64(n)); err != nil {
		return err
	}
	for id := 0; id < n; id++ {
		l := g.Label(NodeID(id))
		if err := writeUvarint(cw, uint64(len(l))); err != nil {
			return err
		}
		if _, err := cw.Write([]byte(l)); err != nil {
			return err
		}
	}
	if err := writeUvarint(cw, uint64(g.NumEdges())); err != nil {
		return err
	}
	var f64 [8]byte
	for id := 0; id < n; id++ {
		es := g.Children(NodeID(id))
		if err := writeUvarint(cw, uint64(len(es))); err != nil {
			return err
		}
		for _, e := range es {
			if err := writeUvarint(cw, uint64(e.To)); err != nil {
				return err
			}
			if err := writeUvarint(cw, uint64(e.Count)); err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(f64[:], math.Float64bits(e.Plausibility))
			if _, err := cw.Write(f64[:]); err != nil {
				return err
			}
		}
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc)
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

type crcReader struct {
	r   *bufio.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (cr *crcReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.crc = crc32.Update(cr.crc, crc32.IEEETable, []byte{b})
	}
	return b, err
}

// Load reads a snapshot written by Save.
func Load(r io.Reader) (*Store, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic)
	}
	version, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: version: %v", ErrBadSnapshot, err)
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, version)
	}
	nodes, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: node count: %v", ErrBadSnapshot, err)
	}
	const maxNodes = 1 << 28
	if nodes > maxNodes {
		return nil, fmt.Errorf("%w: implausible node count %d", ErrBadSnapshot, nodes)
	}
	s := NewStore()
	for i := uint64(0); i < nodes; i++ {
		ln, err := binary.ReadUvarint(cr)
		if err != nil || ln > 1<<20 {
			return nil, fmt.Errorf("%w: label length", ErrBadSnapshot)
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return nil, fmt.Errorf("%w: label bytes: %v", ErrBadSnapshot, err)
		}
		if got := s.Intern(string(buf)); got != NodeID(i) {
			return nil, fmt.Errorf("%w: duplicate label %q", ErrBadSnapshot, buf)
		}
	}
	if _, err := binary.ReadUvarint(cr); err != nil { // total edges (informational)
		return nil, fmt.Errorf("%w: edge count: %v", ErrBadSnapshot, err)
	}
	var f64 [8]byte
	for id := uint64(0); id < nodes; id++ {
		fan, err := binary.ReadUvarint(cr)
		if err != nil || fan > nodes {
			return nil, fmt.Errorf("%w: fan-out of node %d", ErrBadSnapshot, id)
		}
		for j := uint64(0); j < fan; j++ {
			to, err := binary.ReadUvarint(cr)
			if err != nil || to >= nodes {
				return nil, fmt.Errorf("%w: edge target", ErrBadSnapshot)
			}
			count, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, fmt.Errorf("%w: edge count: %v", ErrBadSnapshot, err)
			}
			if _, err := io.ReadFull(cr, f64[:]); err != nil {
				return nil, fmt.Errorf("%w: plausibility: %v", ErrBadSnapshot, err)
			}
			p := math.Float64frombits(binary.LittleEndian.Uint64(f64[:]))
			s.AddEdge(NodeID(id), NodeID(to), int64(count), p)
		}
	}
	want := cr.crc
	var crcBuf [4]byte
	if _, err := io.ReadFull(cr.r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: trailer: %v", ErrBadSnapshot, err)
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != want {
		return nil, ErrChecksum
	}
	return s, nil
}
