// Package server exposes a built Probase taxonomy as a concurrent HTTP
// query service — the serving shape of the paper's Section 5.3
// applications (semantic search, short-text conceptualisation, table
// understanding all sit on these primitives).
//
// The snapshot is loaded once; every request is answered from memory.
// In front of the engine sits a sharded LRU cache for hot queries and
// a metrics layer (per-endpoint request/error/cache counters and
// latency histograms, plus process and cache-occupancy gauges) exposed
// two ways: the Prometheus text exposition on /metrics and a JSON tree
// on /debug/vars.
//
// # Endpoint contract
//
// All endpoints are GET (conceptualize also accepts POST form data),
// return "application/json", and echo their effective parameters.
// Errors are {"error": "..."} with a 4xx/5xx status. The X-Cache
// response header reports "hit" or "miss" on cacheable endpoints.
//
//	GET /v1/instances?concept=C&k=10
//	    Top-k typical instances of C by T(i|x).
//	    -> {"concept": C, "k": 10, "results": [{"label": .., "score": ..}]}
//
//	GET /v1/concepts?term=T&k=10
//	    Top-k concepts of T by the abstraction typicality T(x|i).
//	    -> {"term": T, "k": 10, "results": [...]}
//
//	GET /v1/typicality?concept=C&instance=I
//	    Both directed typicality scores for the pair.
//	    -> {"concept": C, "instance": I,
//	        "t_instance_given_concept": .., "t_concept_given_instance": ..}
//
//	GET /v1/plausibility?x=X&y=Y
//	    P(x, y) of the isA claim "Y isA X".
//	    -> {"x": X, "y": Y, "plausibility": ..}
//
//	GET /v1/conceptualize?terms=a,b,c&k=5
//	GET /v1/conceptualize?text=free+text&k=5
//	    Joint conceptualisation of a term set (Section 5.3.2). With
//	    text=, known entity mentions are first extracted with the
//	    fine-grained recogniser from internal/apps. 404 when no term is
//	    known to the taxonomy.
//	    -> {"terms": [...], "k": 5, "results": [...]}
//
//	GET /v1/healthz
//	    Liveness plus snapshot identity: shape counts, the on-disk
//	    format magic (empty for in-memory builds), and the logical
//	    graph fingerprint (identical across storage backends). Status
//	    is "ok", or "degraded" when the in-server SLO burn-rate engine
//	    has a multi-window error-budget rule firing (reasons explains
//	    which); load balancers use it as a readiness signal.
//	    -> {"status": "ok|degraded", "nodes": .., "edges": ..,
//	        "snapshot_format": "PBC2", "fingerprint": "..",
//	        "uptime_ms": ..}
//
//	GET /v1/admin/stats
//	    The full taxstats health profile of the served snapshot:
//	    structural counts, degree/depth histograms, top concepts, and
//	    plausibility/typicality/entropy score distributions. Computed
//	    once per snapshot (at startup and on every Swap), served from
//	    memory. 503 if the snapshot could not be profiled.
//	    -> {"snapshot_format": .., "uptime_ms": .., "profile": {...}}
//
//	GET /v1/admin/traffic
//	    Live traffic analytics as a probase-traffic/v1 report (the
//	    benchfmt envelope): per-endpoint rolling 1m/5m/30m RED windows
//	    (qps, error rate, cache-hit rate, p50/p90/p99), Space-Saving
//	    heavy-hitter keys per endpoint, and the SLO burn-rate
//	    evaluation behind the healthz status. This is what
//	    cmd/probase-top polls.
//
//	Health and analytics responses (/v1/healthz, /v1/admin/*) carry
//	Cache-Control: no-store so intermediaries never serve them stale.
//
//	GET /metrics
//	    Prometheus text exposition: probase_http_requests_total,
//	    probase_http_errors_total, probase_cache_{hits,misses}_total,
//	    probase_http_request_duration_seconds (histogram),
//	    probase_http_inflight_requests, probase_cache_shard_entries,
//	    probase_cache_purges_total + probase_cache_purged_entries
//	    (snapshot hot-swap purges), probase_slo_burn_rate{window} +
//	    probase_slo_degraded + probase_slo_availability_target (the
//	    burn-rate engine's live verdict), probase_snapshot_* health
//	    gauges (shape counts plus probase_snapshot_score{dist,stat}
//	    distribution stats, refreshed on Swap), probase_process_*
//	    gauges.
//
//	GET /debug/vars
//	    The same counters as a JSON tree: per-endpoint requests,
//	    errors, cache_hits, cache_misses, latency histogram; global
//	    inflight gauge.
//
// Each request runs under a context deadline (Config.RequestTimeout);
// exceeding it aborts the request with 503.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/extraction"
	"repro/internal/obs"
	"repro/internal/prob"
	"repro/internal/taxstats"
	"repro/internal/window"
)

// Config tunes the serving layer. The zero value is usable.
type Config struct {
	// CacheShards is the number of LRU shards (rounded up to a power of
	// two). Default 16.
	CacheShards int
	// CacheEntriesPerShard bounds each shard. Default 512.
	CacheEntriesPerShard int
	// RequestTimeout aborts slow requests. Default 5s.
	RequestTimeout time.Duration
	// MaxK caps the k parameter. Default 1000.
	MaxK int
	// StatsSampleInstances caps how many instances the taxstats health
	// profile scores on snapshot load and swap (0 = all). Large
	// taxonomies can cap this to bound startup time; the profile records
	// the cap so a sampled profile is never mistaken for exhaustive.
	StatsSampleInstances int
	// SLO is the availability objective the in-server burn-rate engine
	// evaluates against the live traffic windows (probase_slo_* gauges,
	// the ok|degraded /v1/healthz status). The zero value means
	// window.DefaultSLOConfig. A non-zero config must be valid —
	// binaries load it via window.LoadSLOConfig, which validates; New
	// panics on an invalid one (programmer error, not runtime input).
	SLO window.SLOConfig
	// FailInject, when > 0, fails every Nth query-endpoint request with
	// a synthetic 500 — the CI gate-liveness hook proving an error storm
	// actually flips healthz to degraded. Health and admin endpoints are
	// exempt so the degraded verdict stays observable. Never set this in
	// production.
	FailInject int
	// Now is the clock the traffic analytics rings read. Default
	// time.Now; tests inject a fake for deterministic rotation.
	Now func() time.Time
	// Reloader produces a freshly loaded Probase for POST
	// /v1/admin/reload (and is what probase-serve wires SIGHUP to): the
	// server Swaps the result in with zero dropped requests and releases
	// the old snapshot's resources once its last in-flight request
	// drains. Nil disables the endpoint (501).
	Reloader func() (*core.Probase, error)
}

func (c Config) withDefaults() Config {
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.CacheEntriesPerShard <= 0 {
		c.CacheEntriesPerShard = 512
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if len(c.SLO.BurnRules) == 0 {
		c.SLO = window.DefaultSLOConfig()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// endpoint names, used for routing and metrics families.
const (
	epInstances     = "instances"
	epConcepts      = "concepts"
	epTypicality    = "typicality"
	epPlausibility  = "plausibility"
	epConceptualize = "conceptualize"
	epHealthz       = "healthz"
	epAdminStats    = "admin_stats"
	epAdminTraffic  = "admin_traffic"
	epAdminReload   = "admin_reload"
)

var allEndpoints = []string{
	epInstances, epConcepts, epTypicality, epPlausibility,
	epConceptualize, epHealthz, epAdminStats, epAdminTraffic,
	epAdminReload,
}

// snapState bundles everything derived from one snapshot — the engine,
// the entity recogniser built over its labels, and the taxstats health
// profile. Swapping snapshots replaces the whole bundle atomically so a
// request never sees the new graph with the old recogniser or profile.
//
// The bundle is a refcounted epoch: refs starts at 1 (the Server's own
// reference) and every request acquires/releases around its handler.
// When the server Swaps the snapshot out it drops its reference; the
// last releaser — server or straggling request — closes the Probase,
// which for a memory-mapped snapshot unmaps the file. A request can
// therefore never touch unmapped memory, and a reload under load drops
// zero requests.
type snapState struct {
	pb      *core.Probase
	rec     *apps.Recognizer
	profile *taxstats.Profile
	refs    atomic.Int64
}

// acquire takes a reference; it fails only when the epoch already hit
// zero (swapped out and fully drained), in which case the caller must
// re-read the current state.
func (st *snapState) acquire() bool {
	for {
		n := st.refs.Load()
		if n <= 0 {
			return false
		}
		if st.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release drops a reference, closing the snapshot's resources (the mmap
// of a mapped snapshot) when the last one goes.
func (st *snapState) release() {
	if st.refs.Add(-1) == 0 {
		st.pb.Close()
	}
}

// Server answers taxonomy queries over HTTP. Safe for concurrent use;
// construct with New and mount via Handler (or use it directly as an
// http.Handler).
type Server struct {
	snap     atomic.Pointer[snapState]
	cache    *Cache
	metrics  *Metrics
	traffic  *traffic
	cfg      Config
	mux      *http.ServeMux
	start    time.Time
	reqCount atomic.Int64 // drives FailInject's every-Nth selection
}

// New builds a Server around a loaded taxonomy.
func New(pb *core.Probase, cfg Config) *Server {
	cfg = cfg.withDefaults()
	tr, err := newTraffic(allEndpoints, cfg.SLO, cfg.Now)
	if err != nil {
		// Config.SLO is validated where it enters the program
		// (window.LoadSLOConfig); reaching here is a programming error.
		panic("server: invalid Config.SLO: " + err.Error())
	}
	s := &Server{
		cache:   NewCache(cfg.CacheShards, cfg.CacheEntriesPerShard),
		metrics: newMetrics(allEndpoints),
		traffic: tr,
		cfg:     cfg,
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	s.snap.Store(newSnapState(pb, cfg))
	s.mux.Handle("/v1/instances", s.wrap(epInstances, true, s.handleInstances))
	s.mux.Handle("/v1/concepts", s.wrap(epConcepts, true, s.handleConcepts))
	s.mux.Handle("/v1/typicality", s.wrap(epTypicality, true, s.handleTypicality))
	s.mux.Handle("/v1/plausibility", s.wrap(epPlausibility, true, s.handlePlausibility))
	s.mux.Handle("/v1/conceptualize", s.wrap(epConceptualize, true, s.handleConceptualize))
	s.mux.Handle("/v1/healthz", s.wrap(epHealthz, false, s.handleHealthz))
	s.mux.Handle("/v1/admin/stats", s.wrap(epAdminStats, false, s.handleAdminStats))
	s.mux.Handle("/v1/admin/traffic", s.wrap(epAdminTraffic, false, s.handleAdminTraffic))
	s.mux.Handle("/v1/admin/reload", s.wrap(epAdminReload, false, s.handleAdminReload))
	s.mux.Handle("/debug/vars", s.metrics.Handler())
	s.mux.Handle("/metrics", s.metrics.PrometheusHandler())
	s.metrics.observeCache(s.cache)
	// Scrape-time gauges hold a snapshot reference while they read, so a
	// concurrent swap cannot unmap the graph under them.
	s.metrics.observeSnapshot(
		func() int { st := s.acquireState(); defer st.release(); return st.pb.Graph.NumNodes() },
		func() int { st := s.acquireState(); defer st.release(); return st.pb.Graph.NumEdges() },
		func() bool { st := s.acquireState(); defer st.release(); return st.pb.Mapped() })
	s.metrics.observeSLO(tr.engine)
	taxstats.Register(s.metrics.Registry(), s.profile)
	return s
}

// newSnapState derives the per-snapshot bundle. The profile pass can
// only fail on a cyclic graph, which a built or loaded Probase cannot
// be; if it somehow does, the state ships with a nil profile (stats
// gauges read 0, /v1/admin/stats reports 503) rather than refusing to
// serve queries.
func newSnapState(pb *core.Probase, cfg Config) *snapState {
	profile, _ := taxstats.Compute(pb.Graph, pb.Typicality(), taxstats.Options{
		SampleInstances: cfg.StatsSampleInstances,
	})
	st := &snapState{pb: pb, rec: apps.NewRecognizer(pb), profile: profile}
	st.refs.Store(1) // the Server's own reference, dropped on Swap
	return st
}

// state returns the current snapshot bundle without taking a reference
// — only for reads that never touch snapshot-backed memory.
func (s *Server) state() *snapState { return s.snap.Load() }

// acquireState returns the current snapshot bundle with a reference
// held; callers must release it. The retry loop covers the narrow race
// where a swap retires the bundle between the load and the acquire.
func (s *Server) acquireState() *snapState {
	for {
		st := s.snap.Load()
		if st.acquire() {
			return st
		}
	}
}

// profile returns the current taxstats health profile (nil only if
// profiling failed). Profiles own all their data (no snapshot-backed
// memory), so no reference is needed to read one.
func (s *Server) profile() *taxstats.Profile { return s.state().profile }

// Swap replaces the served snapshot — the hot-swap seam. The new
// engine's state (recogniser, health profile) is built before the
// pointer flips, the hot-query cache is purged after (stale bodies must
// not outlive the snapshot that produced them), and the probase_snapshot_*
// gauges read the new profile on the next scrape. The purge is
// instrumented (probase_cache_purges_total, probase_cache_purged_entries)
// and the traffic analytics — rolling windows, hot-key sketches — reset
// with it: the new snapshot's latencies and hit rates are a different
// population. In-flight requests finish against whichever state they
// started with. An unprofilable graph (cycle) is refused.
func (s *Server) Swap(pb *core.Probase) error {
	st := newSnapState(pb, s.cfg)
	if st.profile == nil {
		return fmt.Errorf("server: refusing swap: new snapshot is not profilable")
	}
	old := s.snap.Swap(st)
	purged := s.cache.Purge()
	s.metrics.cachePurges.Inc()
	s.metrics.cachePurged.Set(float64(purged))
	s.traffic.reset()
	// Drop the server's reference on the old epoch. The mapped backing
	// store (if any) is unmapped by whoever releases last — here if the
	// old snapshot is idle, or the final straggling request otherwise —
	// so a reload under load drops zero requests.
	if old != nil {
		old.release()
	}
	return nil
}

// Reload re-runs Config.Reloader and hot-swaps the result in — the
// shared implementation behind POST /v1/admin/reload and probase-serve's
// SIGHUP handler. On success it returns the newly live Probase (owned
// by the server from then on); on failure the previous snapshot keeps
// serving.
func (s *Server) Reload() (*core.Probase, error) {
	if s.cfg.Reloader == nil {
		return nil, fmt.Errorf("reload not configured (no snapshot source)")
	}
	pb, err := s.cfg.Reloader()
	if err != nil {
		return nil, fmt.Errorf("reload: %w", err)
	}
	if err := s.Swap(pb); err != nil {
		pb.Close()
		return nil, fmt.Errorf("reload: %w", err)
	}
	return pb, nil
}

// Handler returns the root handler for mounting under an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP lets the Server be used directly as a handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics exposes the metrics registry (for embedding in other muxes).
func (s *Server) Metrics() *Metrics { return s.metrics }

// httpError is an error with an HTTP status; handlers return it to
// signal 4xx responses.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &httpError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// handlerFunc computes a response. Returning (key != "", body) makes the
// response cacheable under that key. Errors map to JSON error bodies.
// st is the snapshot epoch the wrapper acquired for this request:
// handlers must answer from it — never from s.state() — so that a
// concurrent Swap can neither mix old and new snapshots within one
// response nor unmap a mapped graph mid-query.
type handlerFunc func(st *snapState, r *http.Request) (cacheKey string, body any, err error)

// wrap applies the per-request pipeline: method check, deadline, a
// per-endpoint child span, cache lookup, handler, cache fill, metrics,
// and a traffic-analytics observation (rolling RED windows + hot-key
// sketch) booked when the request finishes. When the request is traced
// (the obs middleware opened a root span), the latency observation
// carries the trace ID as an exemplar, so a slow histogram bucket
// points at a concrete /debug/traces waterfall.
func (s *Server) wrap(name string, cacheable bool, h handlerFunc) http.Handler {
	em := s.metrics.endpoint(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		em.requests.Inc()
		s.metrics.inflight.Add(1)
		status := http.StatusOK
		var cacheHit, cacheMiss bool
		defer func() {
			s.metrics.inflight.Add(-1)
			elapsed := time.Since(started)
			em.latency.ObserveDurationExemplar(elapsed, obs.TraceIDFromContext(r.Context()))
			s.traffic.record(name, window.Outcome{
				Latency: elapsed,
				// Only server faults burn SLO budget; 4xx responses are
				// valid negative answers (unknown concepts, bad params)
				// and would let clients degrade our own health verdict.
				Error:     status >= http.StatusInternalServerError,
				CacheHit:  cacheHit,
				CacheMiss: cacheMiss,
			}, hotKeyFor(name, r))
		}()

		// Health and analytics must never be served stale by an
		// intermediary; these endpoints are exactly the uncacheable ones.
		if !cacheable {
			w.Header().Set("Cache-Control", "no-store")
		}

		// Method policy: reload mutates serving state and is POST-only;
		// conceptualize additionally accepts POST form data; everything
		// else is GET.
		methodOK := r.Method == http.MethodGet ||
			(name == epConceptualize && r.Method == http.MethodPost)
		if name == epAdminReload {
			methodOK = r.Method == http.MethodPost
		}
		if !methodOK {
			em.errors.Inc()
			status = http.StatusMethodNotAllowed
			writeJSONError(w, status, "method not allowed")
			return
		}

		// Synthetic fault injection (CI gate-liveness only): fail every
		// Nth query request so the burn-rate engine has a storm to see.
		// Health/admin endpoints stay exempt, or the degraded verdict
		// would be unobservable during the storm it reports.
		if s.cfg.FailInject > 0 && cacheable &&
			s.reqCount.Add(1)%int64(s.cfg.FailInject) == 0 {
			em.errors.Inc()
			status = http.StatusInternalServerError
			writeJSONError(w, status, "synthetic fault (fail-inject)")
			return
		}

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		ctx, span := obs.StartSpan(ctx, "server."+name)
		defer span.End()
		r = r.WithContext(ctx)

		// Pin the snapshot epoch for the whole handler: the reference
		// keeps a concurrent Swap from unmapping the graph under us.
		st := s.acquireState()
		defer st.release()

		key, body, err := h(st, r)
		canCache := cacheable && key != ""
		if err != nil {
			status = http.StatusInternalServerError
			var he *httpError
			if errors.As(err, &he) {
				status = he.status
			}
			if ctx.Err() != nil {
				status = http.StatusServiceUnavailable
			}
			em.errors.Inc()
			span.SetAttr("status", strconv.Itoa(status))
			if status >= http.StatusInternalServerError {
				span.SetError(err.Error())
				obs.Logger(ctx).Warn("request failed",
					"endpoint", name, "status", status, "error", err.Error())
			}
			writeJSONError(w, status, err.Error())
			return
		}
		// body is either pre-marshalled cache bytes or a fresh value.
		var payload []byte
		if raw, ok := body.(cachedBody); ok {
			payload = raw
			w.Header().Set("X-Cache", "hit")
			span.SetAttr("cache", "hit")
			em.cacheHits.Inc()
			cacheHit = true
		} else {
			payload, err = json.Marshal(body)
			if err != nil {
				em.errors.Inc()
				status = http.StatusInternalServerError
				span.SetError("encoding response")
				writeJSONError(w, status, "encoding response")
				return
			}
			if canCache {
				s.cache.Put(key, payload)
				w.Header().Set("X-Cache", "miss")
				span.SetAttr("cache", "miss")
				em.cacheMiss.Inc()
				cacheMiss = true
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(payload)
		w.Write([]byte("\n"))
	})
}

// cachedBody marks a response that came straight from the cache.
type cachedBody []byte

// cached consults the cache under a "cache.lookup" child span; handlers
// call it once their key is known. The span separates cache time from
// snapshot-query time in a request's waterfall.
func (s *Server) cached(ctx context.Context, key string) (any, bool) {
	_, sp := obs.StartSpan(ctx, "cache.lookup")
	v, ok := s.cache.Get(key)
	sp.SetAttr("hit", strconv.FormatBool(ok))
	sp.End()
	if ok {
		return cachedBody(v), true
	}
	return nil, false
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// rankedResult is one scored label in a response.
type rankedResult struct {
	Label string  `json:"label"`
	Score float64 `json:"score"`
}

func toResults(rs []prob.Ranked) []rankedResult {
	out := make([]rankedResult, len(rs))
	for i, r := range rs {
		out[i] = rankedResult{Label: r.Label, Score: r.Score}
	}
	return out
}

// parseK reads and bounds the k parameter.
func (s *Server) parseK(r *http.Request) (int, error) {
	raw := r.FormValue("k")
	if raw == "" {
		return 10, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k <= 0 {
		return 0, badRequest("k must be a positive integer, got %q", raw)
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	return k, nil
}

func cacheKey(parts ...string) string { return strings.Join(parts, "\x1f") }

func (s *Server) handleInstances(st *snapState, r *http.Request) (string, any, error) {
	concept := strings.TrimSpace(r.FormValue("concept"))
	if concept == "" {
		return "", nil, badRequest("missing required parameter: concept")
	}
	k, err := s.parseK(r)
	if err != nil {
		return "", nil, err
	}
	key := cacheKey(epInstances, concept, strconv.Itoa(k))
	if hit, ok := s.cached(r.Context(), key); ok {
		return key, hit, nil
	}
	_, sp := obs.StartSpan(r.Context(), "snapshot.query")
	sp.SetAttr("op", "instances_of")
	results := toResults(st.pb.InstancesOf(concept, k))
	sp.End()
	return key, struct {
		Concept string         `json:"concept"`
		K       int            `json:"k"`
		Results []rankedResult `json:"results"`
	}{concept, k, results}, nil
}

func (s *Server) handleConcepts(st *snapState, r *http.Request) (string, any, error) {
	term := strings.TrimSpace(r.FormValue("term"))
	if term == "" {
		return "", nil, badRequest("missing required parameter: term")
	}
	k, err := s.parseK(r)
	if err != nil {
		return "", nil, err
	}
	key := cacheKey(epConcepts, term, strconv.Itoa(k))
	if hit, ok := s.cached(r.Context(), key); ok {
		return key, hit, nil
	}
	_, sp := obs.StartSpan(r.Context(), "snapshot.query")
	sp.SetAttr("op", "concepts_of")
	results := toResults(st.pb.ConceptsOf(term, k))
	sp.End()
	return key, struct {
		Term    string         `json:"term"`
		K       int            `json:"k"`
		Results []rankedResult `json:"results"`
	}{term, k, results}, nil
}

func (s *Server) handleTypicality(st *snapState, r *http.Request) (string, any, error) {
	concept := strings.TrimSpace(r.FormValue("concept"))
	instance := strings.TrimSpace(r.FormValue("instance"))
	if concept == "" || instance == "" {
		return "", nil, badRequest("missing required parameters: concept and instance")
	}
	key := cacheKey(epTypicality, concept, instance)
	if hit, ok := s.cached(r.Context(), key); ok {
		return key, hit, nil
	}
	_, sp := obs.StartSpan(r.Context(), "snapshot.query")
	sp.SetAttr("op", "typicality")
	down := s.scoreFor(st.pb.InstancesOf(concept, s.cfg.MaxK), instance, false)
	up := s.scoreFor(st.pb.ConceptsOf(instance, s.cfg.MaxK), concept, true)
	sp.End()
	return key, struct {
		Concept           string  `json:"concept"`
		Instance          string  `json:"instance"`
		TInstGivenConcept float64 `json:"t_instance_given_concept"`
		TConceptGivenInst float64 `json:"t_concept_given_instance"`
	}{concept, instance, down, up}, nil
}

// scoreFor finds label's score in a ranked list. Concept labels in the
// graph are canonical singular sense nodes ("company#2"), so the query's
// surface form is canonicalised and sense suffixes are stripped before
// comparing; conceptPos selects the super-concept canonicaliser.
func (s *Server) scoreFor(rs []prob.Ranked, label string, conceptPos bool) float64 {
	want := strings.ToLower(label)
	canon := extraction.CanonicalSub(label)
	if conceptPos {
		canon = extraction.CanonicalSuper(label)
	}
	for _, r := range rs {
		got := strings.ToLower(core.BaseLabel(r.Label))
		if got == want || got == strings.ToLower(canon) {
			return r.Score
		}
	}
	return 0
}

func (s *Server) handlePlausibility(st *snapState, r *http.Request) (string, any, error) {
	x := strings.TrimSpace(r.FormValue("x"))
	y := strings.TrimSpace(r.FormValue("y"))
	if x == "" || y == "" {
		return "", nil, badRequest("missing required parameters: x and y")
	}
	key := cacheKey(epPlausibility, x, y)
	if hit, ok := s.cached(r.Context(), key); ok {
		return key, hit, nil
	}
	_, sp := obs.StartSpan(r.Context(), "snapshot.query")
	sp.SetAttr("op", "plausibility")
	p := st.pb.Plausibility(x, y)
	sp.End()
	return key, struct {
		X            string  `json:"x"`
		Y            string  `json:"y"`
		Plausibility float64 `json:"plausibility"`
	}{x, y, p}, nil
}

const (
	maxConceptualizeTerms = 32
	maxConceptualizeText  = 4096
)

func (s *Server) handleConceptualize(st *snapState, r *http.Request) (string, any, error) {
	k, err := s.parseK(r)
	if err != nil {
		return "", nil, err
	}
	var terms []string
	rawTerms := strings.TrimSpace(r.FormValue("terms"))
	text := strings.TrimSpace(r.FormValue("text"))
	switch {
	case rawTerms != "" && text != "":
		return "", nil, badRequest("pass either terms or text, not both")
	case rawTerms != "":
		for _, t := range strings.Split(rawTerms, ",") {
			if t = strings.TrimSpace(t); t != "" {
				terms = append(terms, t)
			}
		}
	case text != "":
		if len(text) > maxConceptualizeText {
			return "", nil, badRequest("text exceeds %d bytes", maxConceptualizeText)
		}
		for _, m := range st.rec.Recognize(text) {
			terms = append(terms, m.Text)
		}
		if len(terms) == 0 {
			return "", nil, notFound("no known entity mentions in text")
		}
	default:
		return "", nil, badRequest("missing required parameter: terms or text")
	}
	if len(terms) > maxConceptualizeTerms {
		return "", nil, badRequest("at most %d terms", maxConceptualizeTerms)
	}
	key := cacheKey(epConceptualize, strings.Join(terms, ","), strconv.Itoa(k))
	if hit, ok := s.cached(r.Context(), key); ok {
		return key, hit, nil
	}
	_, sp := obs.StartSpan(r.Context(), "snapshot.query")
	sp.SetAttr("op", "conceptualize")
	ranked, ok := st.pb.Conceptualize(terms, k)
	if !ok {
		// Per-term abstraction fills in when the joint set is unknown —
		// the internal/apps short-text fallback.
		sp.SetAttr("fallback", "per_term")
		ranked = perTermFallback(st.pb, terms, k)
		if len(ranked) == 0 {
			sp.End()
			return "", nil, notFound("no term in %v is known to the taxonomy", terms)
		}
	}
	sp.End()
	return key, struct {
		Terms   []string       `json:"terms"`
		K       int            `json:"k"`
		Results []rankedResult `json:"results"`
	}{terms, k, toResults(ranked)}, nil
}

// perTermFallback merges per-term abstractions by summed score when the
// joint conceptualisation has no candidate covering every term.
func perTermFallback(pb *core.Probase, terms []string, k int) []prob.Ranked {
	scores := map[string]float64{}
	for _, term := range terms {
		for _, r := range pb.ConceptsOf(term, k) {
			scores[core.BaseLabel(r.Label)] += r.Score
		}
	}
	out := make([]prob.Ranked, 0, len(scores))
	for label, sc := range scores {
		out = append(out, prob.Ranked{Label: label, Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Label < out[j].Label
	})
	return prob.TopK(out, k)
}

func (s *Server) handleHealthz(st *snapState, r *http.Request) (string, any, error) {
	ev := s.traffic.engine.Eval()
	return "", struct {
		// Status is "ok", or "degraded" when the SLO burn-rate engine
		// has a multi-window rule firing (Reasons says which).
		Status  string   `json:"status"`
		Reasons []string `json:"reasons,omitempty"`
		Nodes   int      `json:"nodes"`
		Edges   int      `json:"edges"`
		// Format is the snapshot's on-disk format magic ("PBGR", "PBC2",
		// "PBFL"); empty when serving an in-memory build.
		Format string `json:"snapshot_format,omitempty"`
		// Mapped reports whether the graph is served zero-copy out of a
		// memory-mapped snapshot file.
		Mapped bool `json:"snapshot_mapped"`
		// Fingerprint identifies the logical graph content; two replicas
		// serving the same taxonomy report the same value regardless of
		// storage backend or snapshot format.
		Fingerprint string        `json:"fingerprint"`
		Shards      int           `json:"cache_shards"`
		Cached      int           `json:"cache_entries"`
		UptimeMS    int64         `json:"uptime_ms"`
		Build       obs.BuildInfo `json:"build"`
	}{
		Status:      ev.Status,
		Reasons:     ev.Reasons,
		Nodes:       st.pb.Graph.NumNodes(),
		Edges:       st.pb.Graph.NumEdges(),
		Format:      st.pb.Format,
		Mapped:      st.pb.Mapped(),
		Fingerprint: st.fingerprint(),
		Shards:      s.cache.Shards(),
		Cached:      s.cache.Len(),
		UptimeMS:    time.Since(s.start).Milliseconds(),
		Build:       obs.Version(),
	}, nil
}

// fingerprint returns the graph fingerprint from the health profile,
// falling back to hashing the graph directly if profiling failed.
func (st *snapState) fingerprint() string {
	if st.profile != nil {
		return st.profile.Fingerprint
	}
	return taxstats.Fingerprint(st.pb.Graph)
}

// handleAdminStats serves the full taxstats health profile of the
// currently served snapshot — the same data the probase_snapshot_*
// gauges summarise, with the complete histograms and top-concept table.
func (s *Server) handleAdminStats(st *snapState, r *http.Request) (string, any, error) {
	if st.profile == nil {
		return "", nil, &httpError{status: http.StatusServiceUnavailable,
			msg: "snapshot health profile unavailable"}
	}
	return "", struct {
		SnapshotFormat string            `json:"snapshot_format,omitempty"`
		UptimeMS       int64             `json:"uptime_ms"`
		Profile        *taxstats.Profile `json:"profile"`
	}{
		SnapshotFormat: st.pb.Format,
		UptimeMS:       time.Since(s.start).Milliseconds(),
		Profile:        st.profile,
	}, nil
}

// handleAdminReload re-runs Config.Reloader and hot-swaps the result in
// (POST only). The response describes the snapshot now being served.
// Concurrent in-flight requests finish against the snapshot they
// started on; the old mapping (if any) is unmapped only after the last
// of them drains. probase-serve wires SIGHUP to the same path, so
// `kill -HUP` and `curl -X POST .../v1/admin/reload` are equivalent.
func (s *Server) handleAdminReload(st *snapState, r *http.Request) (string, any, error) {
	if s.cfg.Reloader == nil {
		return "", nil, &httpError{status: http.StatusNotImplemented,
			msg: "reload not configured (no snapshot source)"}
	}
	pb, err := s.Reload()
	if err != nil {
		return "", nil, err
	}
	return "", struct {
		Status string `json:"status"`
		Nodes  int    `json:"nodes"`
		Edges  int    `json:"edges"`
		Format string `json:"snapshot_format,omitempty"`
		Mapped bool   `json:"snapshot_mapped"`
	}{
		Status: "reloaded",
		Nodes:  pb.Graph.NumNodes(),
		Edges:  pb.Graph.NumEdges(),
		Format: pb.Format,
		Mapped: pb.Mapped(),
	}, nil
}
